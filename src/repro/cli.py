"""Command-line interface: run algorithms, print workload stats, sweep variants.

Examples::

    python -m repro stats                          # Table 1 analog stats
    python -m repro run CC-SV --graph road --hosts 4
    python -m repro run PR --graph powerlaw --bulk --jobs 4   # same bytes, more cores
    python -m repro run PR --graph road --engine async        # priority/delta engine
    python -m repro engines CC-LP --graph powerlaw --hosts 4  # async vs BSP oracle
    python -m repro run LV --graph powerlaw --hosts 8 --variant mc
    python -m repro variants CC-SV --graph powerlaw --hosts 4
    python -m repro compare-lv --graph road --hosts 4   # Kimbap vs Vite
    python -m repro trace BFS --graph road --hosts 4 --out trace.json
    python -m repro profile LV --graph powerlaw --hosts 4 --top 10
    python -m repro faults BFS --graph road --hosts 4 --plan crash
    python -m repro faults PR --graph powerlaw --plan chaos --report f.json
    python -m repro chaos PR --graph road --jobs 4 --policy refork --at-boundary 2
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.cluster import Cluster
from repro.core.variants import RuntimeVariant
from repro.eval.harness import APP_POLICY, KIMBAP_APPS, run_galois, run_kimbap, run_vite
from repro.eval.reporting import format_phase_breakdown, format_table
from repro.eval.workloads import GRAPHS, load_graph
from repro.exec import (
    ENGINES,
    PLAN_SCHEMA,
    Executor,
    UnsupportedPlanError,
    format_plan_summary,
    plan_summary,
)
from repro.faults import CHAOS_KINDS, NAMED_PLANS, ChaosEvent, ChaosPlan, named_plan
from repro.graph import generators
from repro.graph.stats import compute_stats
from repro.partition import partition
from repro.trace import top_phases, write_chrome_trace
from repro.verify import VerificationError, check_equivalent_values

VARIANTS_BY_LABEL = {variant.label: variant for variant in RuntimeVariant}


def _result_rows(results) -> str:
    return format_table(
        ("system", "app", "graph", "hosts", "comp(s)", "comm(s)", "total(s)"),
        [result.row() for result in results],
    )


def cmd_stats(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(GRAPHS):
        stats = compute_stats(name, load_graph(name, scale=args.scale))
        rows.append(stats.row())
    print(
        format_table(
            ("graph", "|V|", "|E|", "|E|/|V|", "max deg", "diam>=", "MB"), rows
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    variant = VARIANTS_BY_LABEL[args.variant]
    result = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
        engine=args.engine,
    )
    print(_result_rows([result]))
    print(f"rounds: {result.rounds}")
    if getattr(result, "async_stats", None):
        stats = result.async_stats
        print(f"async chunks: {stats['chunks']}, updates: {stats['updates']}")
    for key, value in sorted(result.stats.items()):
        print(f"{key}: {value}")
    print(f"messages: {result.messages}, bytes: {result.bytes}")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote run result JSON to {args.report}")
    return 0


def cmd_variants(args: argparse.Namespace) -> int:
    results = [
        run_kimbap(
            args.app,
            args.graph,
            args.hosts,
            variant=variant,
            threads=args.threads,
            bulk=args.bulk,
            jobs=args.jobs,
            codegen=False if args.no_codegen else None,
            engine=args.engine,
        )
        for variant in (
            RuntimeVariant.MC,
            RuntimeVariant.SGR_ONLY,
            RuntimeVariant.SGR_CF,
            RuntimeVariant.KIMBAP,
        )
    ]
    print(_result_rows(results))
    return 0


def cmd_compare_lv(args: argparse.Namespace) -> int:
    kimbap = run_kimbap(
        "LV",
        args.graph,
        args.hosts,
        threads=args.threads,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
        engine=args.engine,
    )
    vite = run_vite(args.graph, args.hosts, threads=args.threads)
    galois = run_galois("LV", args.graph, threads=args.threads)
    print(_result_rows([kimbap, vite, galois]))
    print(
        f"speedup over Vite: {vite.total / kimbap.total:.2f}x "
        f"(identical clustering: "
        f"{abs(kimbap.stats['modularity'] - vite.stats['modularity']) < 1e-9})"
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    variant = VARIANTS_BY_LABEL[args.variant]
    result = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
        engine=args.engine,
    )
    timeline = result.timeline()
    write_chrome_trace(args.out, timeline)
    cluster = result.cluster
    print(_result_rows([result]))
    print(format_phase_breakdown(cluster.log, cluster.cost_model, result.threads))
    print(
        f"wrote {len(cluster.log.phases)} phases x {result.hosts} hosts "
        f"({timeline.total:.3f} modeled s) to {args.out}"
    )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(result.to_dict(), handle, indent=1)
        print(f"wrote run result JSON to {args.report}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    variant = VARIANTS_BY_LABEL[args.variant]
    result = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
        engine=args.engine,
    )
    cluster = result.cluster
    costs = top_phases(cluster.log, cluster.cost_model, result.threads, k=args.top)
    rows = []
    for cost in costs:
        share = 100.0 * cost.time.total / result.total if result.total else 0.0
        total_units = sum(cost.breakdown.values())
        attribution = "  ".join(
            f"{name}:{100.0 * units / total_units:.0f}%"
            for name, units in sorted(
                cost.breakdown.items(), key=lambda item: -item[1]
            )[:3]
        )
        rows.append(
            (
                cost.phase_index,
                cost.round,
                cost.kind.value,
                cost.operator or cost.label or "-",
                f"{cost.time.total:.4f}",
                f"{share:.1f}%",
                attribution or "-",
            )
        )
    print(_result_rows([result]))
    print(
        format_table(
            ("#", "round", "phase", "operator", "total (s)", "share", "top weighted units"),
            rows,
        )
    )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    variant = VARIANTS_BY_LABEL[args.variant]
    if args.engine != "bsp":
        print("faults requires --engine bsp (the async engine refuses fault plans)")
        return 1
    plan = named_plan(
        args.plan,
        seed=args.seed,
        hosts=args.hosts,
        crash_round=args.crash_round,
        checkpoint_interval=args.checkpoint_interval,
    )
    baseline = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
    )
    faulted = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        fault_plan=plan,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
    )
    print(_result_rows([baseline, faulted]))
    if faulted.outcome != "ok":
        print(f"faulted run FAILED: {faulted.outcome} ({faulted.failure})")
        return 1
    if baseline.values is not None and faulted.values is not None:
        try:
            check_equivalent_values(baseline.values, faulted.values)
        except VerificationError as error:
            print(f"EQUIVALENCE FAILED: {error}")
            return 1
        print(f"equivalence: faulted values identical to fault-free baseline "
              f"({len(baseline.values)} nodes)")
    overhead = (
        100.0 * (faulted.total - baseline.total) / baseline.total
        if baseline.total
        else 0.0
    )
    report = faulted.faults or {}
    print(
        f"plan {plan.name!r} (seed {plan.seed}, checkpoint interval "
        f"{plan.checkpoint_interval}): overhead {overhead:+.1f}% over fault-free"
    )
    print(
        f"  drops: {report.get('messages_dropped', 0)}"
        f"  retries: {report.get('retries', 0)}"
        f"  duplicates: {report.get('messages_duplicated', 0)}"
        f"  kv timeouts: {report.get('kv_timeouts', 0)}"
    )
    print(
        f"  checkpoints: {report.get('checkpoints_taken', 0)} "
        f"({report.get('checkpoint_bytes', 0)} bytes, "
        f"{report.get('checkpoint_time', 0.0):.4f}s)"
        f"  recoveries: {report.get('recoveries', 0)} "
        f"({report.get('rounds_replayed', 0)} rounds replayed, "
        f"{report.get('recovery_time', 0.0):.4f}s)"
    )
    for event in report.get("events", []):
        if event.get("kind") != "checkpoint":  # checkpoints are summarized above
            print(f"  event: {event}")
    if args.out:
        timeline = faulted.timeline()
        write_chrome_trace(args.out, timeline)
        print(f"wrote faulted-run Chrome trace to {args.out}")
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(faulted.to_dict(), handle, indent=1)
        print(f"wrote faulted-run result JSON to {args.report}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Kill a real worker mid-run and prove the healed result's bytes.

    Runs the fault-free ``jobs=1`` oracle, then the same workload at
    ``--jobs N`` with a :class:`ChaosPlan` SIGKILLing (or SIGTERMing /
    OOM-killing) worker ``--worker`` at sync boundary ``--at-boundary``
    under the chosen recovery policy, and byte-compares the two
    ``RunResult.to_dict()`` payloads. Exits 1 if the kill never fired,
    recovery failed, or any byte diverged.
    """
    variant = VARIANTS_BY_LABEL[args.variant]
    if args.engine != "bsp":
        print("chaos requires --engine bsp (the async engine runs at jobs=1 only)")
        return 1
    if args.jobs < 2:
        print("chaos needs --jobs >= 2 (there is no worker to kill at jobs=1)")
        return 1
    chaos = ChaosPlan(
        name=f"cli@{args.at_boundary}",
        seed=args.seed,
        events=(
            ChaosEvent(
                boundary=args.at_boundary, worker=args.worker, kind=args.kind
            ),
        ),
    )
    baseline = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        bulk=args.bulk,
        jobs=1,
        codegen=False if args.no_codegen else None,
    )
    chaotic = run_kimbap(
        args.app,
        args.graph,
        args.hosts,
        variant=variant,
        threads=args.threads,
        bulk=args.bulk,
        jobs=args.jobs,
        codegen=False if args.no_codegen else None,
        chaos_plan=chaos,
        recovery=args.policy,
    )
    print(_result_rows([baseline, chaotic]))
    stats = chaotic.parallel or {}
    if chaotic.outcome != "ok":
        print(f"chaos run FAILED: {chaotic.outcome} ({chaotic.failure})")
        return 1
    if stats.get("deaths_detected", 0) < 1:
        print(
            f"chaos event never fired: worker {args.worker} survived to the "
            f"end (run had {stats.get('boundaries', 0)} boundaries; asked "
            f"for boundary {args.at_boundary})"
        )
        return 1
    identical = json.dumps(baseline.to_dict(), sort_keys=True) == json.dumps(
        chaotic.to_dict(), sort_keys=True
    )
    print(
        f"chaos: {args.kind} worker {args.worker} at boundary "
        f"{args.at_boundary} (policy {args.policy!r})"
    )
    print(
        f"  deaths detected: {stats.get('deaths_detected', 0)}"
        f"  heals: {stats.get('heals', 0)}"
        f"  reforks: {stats.get('reforks', 0)}"
        f"  reshards: {stats.get('reshards', 0)}"
        f"  diagnostics: {stats.get('diagnostics', 0)}"
    )
    print(
        f"  recovered bytes identical to fault-free jobs=1: {identical}"
    )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(chaotic.to_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote healed-run result JSON to {args.report}")
    if args.baseline_report:
        with open(args.baseline_report, "w") as handle:
            json.dump(baseline.to_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote baseline result JSON to {args.baseline_report}")
    if not identical:
        print("BYTE-IDENTITY FAILED: healed run diverged from the oracle")
        return 1
    return 0


# Value-equivalence tolerance for `repro engines` (absolute, per node).
# CC-LP and SSSP converge to the exact same fixed point under any schedule;
# delta-PageRank accumulates in a different order, so ranks agree only to
# the residual tolerance the plan declares.
ENGINE_APP_TOLERANCE = {"PR": 1e-6, "SSSP": 1e-9}


def cmd_engines(args: argparse.Namespace) -> int:
    """Run BSP and async on the same workload and check value equivalence.

    The BSP run is the oracle; the async run must land on the same per-node
    values (within the per-app tolerance). Prints both modeled times plus
    the async engine's chunk/update counts, and exits 1 on divergence or
    when the app has no async-eligible kernel - this is the CI engine-smoke
    entry point.
    """
    tolerance = (
        args.tolerance
        if args.tolerance is not None
        else ENGINE_APP_TOLERANCE.get(args.app, 0.0)
    )
    bsp = run_kimbap(
        args.app, args.graph, args.hosts, threads=args.threads, engine="bsp"
    )
    try:
        asynchronous = run_kimbap(
            args.app, args.graph, args.hosts, threads=args.threads, engine="async"
        )
    except UnsupportedPlanError as error:
        print(f"async engine cannot run {args.app}: {error}")
        return 1
    print(_result_rows([bsp, asynchronous]))
    stats = getattr(asynchronous, "async_stats", None) or {}
    print(
        f"bsp rounds: {bsp.rounds}  async chunks: {stats.get('chunks', '?')}  "
        f"async updates: {stats.get('updates', '?')}"
    )
    if asynchronous.total:
        print(f"modeled speedup (async over bsp): {bsp.total / asynchronous.total:.2f}x")
    if bsp.values is None or asynchronous.values is None:
        print("ENGINE EQUIVALENCE FAILED: a run produced no values")
        return 1
    try:
        check_equivalent_values(bsp.values, asynchronous.values, tolerance)
    except VerificationError as error:
        print(f"ENGINE EQUIVALENCE FAILED: {error}")
        return 1
    print(
        f"equivalence: async values match the BSP oracle within {tolerance} "
        f"({len(bsp.values)} nodes)"
    )
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Print the operator plan(s) one application executes.

    The application runs once on a tiny built-in graph with an observing
    executor; every distinct plan handed to ``Executor.run`` is reported,
    so the output is the real executed plan set, not a static description.
    """
    graph = generators.road_like(4, 3, seed=1, weighted=True)
    hosts = 2
    pgraph = partition(graph, hosts, APP_POLICY[args.app])
    cluster = Cluster(hosts, threads_per_host=2)
    summaries: list[dict] = []
    seen: set[str] = set()

    def observe(plan) -> None:
        summary = plan_summary(plan)
        key = json.dumps(summary, sort_keys=True)
        if key not in seen:
            seen.add(key)
            summaries.append(summary)

    executor = Executor(cluster, observer=observe)
    KIMBAP_APPS[args.app](cluster, pgraph, executor=executor)
    if args.json:
        print(
            json.dumps(
                {"schema": PLAN_SCHEMA, "app": args.app, "plans": summaries},
                indent=1,
            )
        )
    else:
        for summary in summaries:
            print(format_plan_summary(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Kimbap reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print the Table 1 analog statistics")
    stats.add_argument("--scale", type=int, default=None)
    stats.set_defaults(fn=cmd_stats)

    def common(sub_parser):
        sub_parser.add_argument("--graph", choices=sorted(GRAPHS), default="road")
        sub_parser.add_argument("--hosts", type=int, default=4)
        sub_parser.add_argument("--threads", type=int, default=48)
        sub_parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="simulator worker processes (host-shard parallel execution; "
            "results are byte-identical to --jobs 1)",
        )
        sub_parser.add_argument(
            "--bulk",
            action="store_true",
            help="use the vectorized bulk kernel backend (byte-identical)",
        )
        sub_parser.add_argument(
            "--no-codegen",
            action="store_true",
            help="disable plan-to-kernel code generation on the bulk "
            "backend (interpreted kernel bodies; byte-identical)",
        )
        sub_parser.add_argument(
            "--engine",
            choices=ENGINES,
            default="bsp",
            help="execution engine: 'bsp' (round-synchronous, the default) "
            "or 'async' (priority/delta, value-equivalent, jobs=1 only)",
        )

    run = sub.add_parser("run", help="run one application on the simulated cluster")
    run.add_argument("app", choices=sorted(KIMBAP_APPS))
    common(run)
    run.add_argument(
        "--variant", choices=sorted(VARIANTS_BY_LABEL), default=RuntimeVariant.KIMBAP.label
    )
    run.add_argument(
        "--report", default=None, help="also write the RunResult JSON here"
    )
    run.set_defaults(fn=cmd_run)

    variants = sub.add_parser(
        "variants", help="run one application on all four runtime variants"
    )
    variants.add_argument("app", choices=sorted(KIMBAP_APPS))
    common(variants)
    variants.set_defaults(fn=cmd_variants)

    compare = sub.add_parser("compare-lv", help="Kimbap vs Vite vs Galois Louvain")
    common(compare)
    compare.set_defaults(fn=cmd_compare_lv)

    trace = sub.add_parser(
        "trace",
        help="run one application and export a Chrome trace_event JSON "
        "timeline (load in chrome://tracing or Perfetto)",
    )
    trace.add_argument("app", choices=sorted(KIMBAP_APPS))
    common(trace)
    trace.add_argument(
        "--variant", choices=sorted(VARIANTS_BY_LABEL), default=RuntimeVariant.KIMBAP.label
    )
    trace.add_argument("--out", default="trace.json", help="trace output path")
    trace.add_argument(
        "--report", default=None, help="also write the RunResult JSON here"
    )
    trace.set_defaults(fn=cmd_trace)

    profile = sub.add_parser(
        "profile", help="top-k costliest phases by modeled time, with attribution"
    )
    profile.add_argument("app", choices=sorted(KIMBAP_APPS))
    common(profile)
    profile.add_argument(
        "--variant", choices=sorted(VARIANTS_BY_LABEL), default=RuntimeVariant.KIMBAP.label
    )
    profile.add_argument("--top", type=int, default=10)
    profile.set_defaults(fn=cmd_profile)

    faults = sub.add_parser(
        "faults",
        help="run one application under a named fault plan and report "
        "recovery equivalence plus overhead vs the fault-free baseline",
    )
    faults.add_argument("app", choices=sorted(KIMBAP_APPS))
    common(faults)
    faults.add_argument(
        "--variant", choices=sorted(VARIANTS_BY_LABEL), default=RuntimeVariant.KIMBAP.label
    )
    faults.add_argument("--plan", choices=NAMED_PLANS, default="crash")
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--crash-round", type=int, default=3, help="round of the injected crash"
    )
    faults.add_argument(
        "--checkpoint-interval",
        type=int,
        default=2,
        help="rounds between checkpoints (0 disables checkpointing)",
    )
    faults.add_argument("--out", default=None, help="Chrome trace output path")
    faults.add_argument(
        "--report", default=None, help="write the faulted RunResult JSON here"
    )
    faults.set_defaults(fn=cmd_faults)

    chaos = sub.add_parser(
        "chaos",
        help="SIGKILL a real worker process mid-run (self-healing pool) "
        "and byte-compare the healed result against the jobs=1 oracle",
    )
    chaos.add_argument("app", choices=sorted(KIMBAP_APPS))
    common(chaos)
    chaos.add_argument(
        "--variant", choices=sorted(VARIANTS_BY_LABEL), default=RuntimeVariant.KIMBAP.label
    )
    chaos.add_argument(
        "--policy",
        choices=("refork", "reshard"),
        default="refork",
        help="recovery policy: refork a replacement worker, or reshard "
        "the dead worker's hosts onto survivors",
    )
    chaos.add_argument(
        "--at-boundary",
        type=int,
        default=2,
        help="sync-boundary ordinal (counted from 1) at which the kill fires",
    )
    chaos.add_argument(
        "--worker", type=int, default=1, help="victim worker index (>= 1)"
    )
    chaos.add_argument("--kind", choices=CHAOS_KINDS, default="sigkill")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--report", default=None, help="write the healed RunResult JSON here"
    )
    chaos.add_argument(
        "--baseline-report",
        default=None,
        help="also write the fault-free jobs=1 RunResult JSON here",
    )
    chaos.set_defaults(fn=cmd_chaos)

    engines = sub.add_parser(
        "engines",
        help="run one application under both engines and verify the async "
        "priority/delta result is value-equivalent to the BSP oracle",
    )
    engines.add_argument("app", choices=sorted(KIMBAP_APPS))
    engines.add_argument("--graph", choices=sorted(GRAPHS), default="road")
    engines.add_argument("--hosts", type=int, default=4)
    engines.add_argument("--threads", type=int, default=48)
    engines.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="absolute per-node tolerance (default: per-app, exact for "
        "monotone apps, 1e-6 for PR)",
    )
    engines.set_defaults(fn=cmd_engines)

    plan = sub.add_parser(
        "plan",
        help="print the operator plan(s) an application executes "
        "(text, or --json for the repro-exec-plan/v1.2 schema)",
    )
    plan.add_argument("app", choices=sorted(KIMBAP_APPS))
    plan.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    plan.set_defaults(fn=cmd_plan)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
