"""Shared pieces of the algorithm implementations.

Includes the result type, the Table 2 operator classification, the shortcut
(pointer-jumping) kernel reused by CC-SV / CC-SCLP / MSF, and the graph
coarsening step shared by Louvain and Leiden.
"""

from __future__ import annotations

import warnings
import weakref
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN, OVERWRITE  # noqa: F401  (OVERWRITE re-exported)
from repro.exec import (
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    SyncStep,
)
from repro.graph.csr import Graph
from repro.partition.base import PartitionedGraph

# OVERWRITE (single-writer assignment expressed as a reduction) is defined
# canonically in repro.core.reducers so the cross-process operator registry
# covers it; it stays re-exported here for the historical import path.


def resolve_executor(
    cluster: Cluster,
    executor: Executor | None,
    bulk: bool | None = None,
    name: str = "algorithm",
) -> Executor:
    """Resolve the executor an algorithm should run its plans on.

    Algorithms take ``executor=``; the backend (scalar vs bulk) is the
    executor's choice, not the algorithm's. The legacy per-algorithm
    ``bulk=`` flag still works as a deprecation shim.
    """
    if executor is not None:
        return executor
    if bulk is not None:
        warnings.warn(
            f"{name}(bulk=...) is deprecated; construct an "
            "Executor(bulk=...) from repro.exec and pass executor=, or "
            "pass bulk= to run_kimbap",
            DeprecationWarning,
            stacklevel=3,
        )
        return Executor(cluster, bulk=bool(bulk))
    return Executor(cluster)


@dataclass
class AlgorithmResult:
    """Uniform output: per-node values plus algorithm-specific stats.

    ``stats`` holds scalars (modularity, set size, ...); ``extra`` holds
    structured outputs such as the MSF edge list.
    """

    name: str
    values: dict[int, Any]
    rounds: int
    stats: dict[str, float] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class OperatorKinds:
    """Table 2 row: which operator kinds an application uses."""

    adjacent_vertex: bool
    trans_vertex: bool


ALGORITHM_OPERATORS: dict[str, OperatorKinds] = {
    "LV": OperatorKinds(adjacent_vertex=True, trans_vertex=True),
    "LD": OperatorKinds(adjacent_vertex=True, trans_vertex=True),
    "MSF": OperatorKinds(adjacent_vertex=False, trans_vertex=True),
    "CC-LP": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
    "CC-SCLP": OperatorKinds(adjacent_vertex=True, trans_vertex=True),
    "CC-SV": OperatorKinds(adjacent_vertex=False, trans_vertex=True),
    "MIS": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
    # extension applications beyond the paper's seven
    "K-CORE": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
    "VERTEX-COVER": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
    "BFS": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
    "SSSP": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
    "PR": OperatorKinds(adjacent_vertex=True, trans_vertex=False),
}


def shortcut_plan(
    pgraph: PartitionedGraph,
    parent: NodePropMap,
    max_rounds: int = 100000,
) -> Plan:
    """Pointer jumping (Figure 8's compiled shortcut) as an operator plan.

    Each round: a request operator over master nodes reads each node's
    parent and requests the grandparent; after request-sync, the shortcut
    operator min-reduces the grandparent onto the node. The first request
    ParFor of the naive compilation (requesting the node's own parent) is
    elided - master properties are always local.
    """

    def request_body(ctx):
        node_parent = parent.read_local(ctx.host, ctx.local)
        parent.request(ctx.host, node_parent)

    def shortcut_body(ctx):
        node_parent = parent.read_local(ctx.host, ctx.local)
        grand_parent = parent.read(ctx.host, node_parent)
        if node_parent != grand_parent:
            parent.reduce(ctx.host, ctx.thread, ctx.node, grand_parent, MIN)

    return Plan(
        name="shortcut",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "shortcut:req",
                    "masters",
                    ScalarKernel(request_body, read_names=(parent.name,)),
                    kind=PhaseKind.REQUEST_COMPUTE,
                )
            ),
            SyncStep(parent, "request"),
            OperatorStep(
                Operator(
                    "shortcut",
                    "masters",
                    ScalarKernel(
                        shortcut_body,
                        read_names=(parent.name,),
                        write_names=((parent.name, MIN.name),),
                    ),
                )
            ),
            SyncStep(parent, "reduce"),
            SyncStep(parent, "broadcast"),
        ],
        quiesce=(parent,),
        max_rounds=max_rounds,
        loop_label="shortcut",
    )


# Plan cache for the shortcut loops: CC-SV / CC-SCLP / MSF call
# shortcut_until_flat once per outer round, and the parallel backend
# (repro.exec.pool) reuses its warm forked workers only for plan objects
# it has seen - a fresh Plan per call would force a refork every round.
# Keyed weakly on the parent map so graphs/maps stay collectable.
_shortcut_plans: "weakref.WeakKeyDictionary[NodePropMap, dict]" = (
    weakref.WeakKeyDictionary()
)


def _cached_shortcut_plan(
    pgraph: PartitionedGraph, parent: NodePropMap, max_rounds: int
) -> Plan:
    plans = _shortcut_plans.setdefault(parent, {})
    key = (id(pgraph), max_rounds)
    plan = plans.get(key)
    if plan is None:
        plan = shortcut_plan(pgraph, parent, max_rounds=max_rounds)
        plans[key] = plan
    return plan


def shortcut_until_flat(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    parent: NodePropMap,
    max_rounds: int = 100000,
    executor: Executor | None = None,
) -> int:
    """Run :func:`shortcut_plan` until the forest is flat; returns rounds.

    Shortcut rounds now advance the cluster's global round counter, so
    crash injection targeting any round of a multi-loop algorithm (CC-SV,
    MSF) lands exactly once and recovery covers the shortcut loops too.
    """
    if executor is None:
        executor = Executor(cluster)
    return executor.run(_cached_shortcut_plan(pgraph, parent, max_rounds))


def weighted_degrees(graph: Graph) -> np.ndarray:
    """Node strengths: row sums of the weighted adjacency (self-loops count)."""
    if graph.weights is None:
        return graph.out_degrees().astype(np.float64)
    strengths = np.zeros(graph.num_nodes)
    np.add.at(strengths, graph.edge_sources(), graph.weights)
    return strengths


def modularity(graph: Graph, labels: np.ndarray, gamma: float = 1.0) -> float:
    """Newman-Girvan modularity of a node -> community assignment.

    ``graph`` is symmetrized (every undirected edge stored twice), so the
    total directed weight is ``2m`` directly.
    """
    weights = graph.weights if graph.weights is not None else np.ones(graph.num_edges)
    two_m = float(weights.sum())
    if two_m == 0:
        return 0.0
    srcs = graph.edge_sources()
    internal = weights[labels[srcs] == labels[graph.indices]].sum()
    strengths = weighted_degrees(graph)
    totals: dict[int, float] = {}
    for node, strength in enumerate(strengths):
        label = int(labels[node])
        totals[label] = totals.get(label, 0.0) + float(strength)
    expected = sum(total * total for total in totals.values()) / (two_m * two_m)
    return float(internal / two_m - gamma * expected)


def coarsen(
    graph: Graph, labels: np.ndarray, cluster: Cluster | None = None,
    pgraph: PartitionedGraph | None = None,
) -> tuple[Graph, np.ndarray]:
    """Aggregate nodes by label into a weighted coarse graph.

    Returns the coarse graph and, for each fine node, its coarse node id.
    Parallel directed edges are summed; intra-community edges become
    self-loops (keeping strengths exact for modularity at the next level).
    When a cluster is given, the per-edge aggregation work plus an
    all-to-all exchange of coarse edges is charged, mirroring how both Vite
    and Kimbap rebuild the coarse graph each phase.
    """
    unique_labels, coarse_of = np.unique(labels, return_inverse=True)
    num_coarse = unique_labels.size
    srcs = coarse_of[graph.edge_sources()]
    dsts = coarse_of[graph.indices]
    weights = graph.weights if graph.weights is not None else np.ones(graph.num_edges)
    keys = srcs * num_coarse + dsts
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    boundaries = np.ones(keys_sorted.size, dtype=bool)
    boundaries[1:] = keys_sorted[1:] != keys_sorted[:-1]
    group = np.cumsum(boundaries) - 1
    summed = np.zeros(int(group[-1]) + 1 if keys_sorted.size else 0)
    np.add.at(summed, group, weights[order])
    first = order[boundaries]
    coarse = Graph.from_arrays(num_coarse, srcs[first], dsts[first], summed)
    if cluster is not None and pgraph is not None:
        with cluster.phase(PhaseKind.REDUCE_COMPUTE, label="coarsen"):
            for part in pgraph.parts:
                cluster.counters(part.host_id).edge_iters += part.num_edges()
        with cluster.phase(PhaseKind.REDUCE_SYNC, label="coarsen"):
            per_host = coarse.num_edges // max(cluster.num_hosts, 1) + 1
            for src in range(cluster.num_hosts):
                for dst in range(cluster.num_hosts):
                    cluster.network.send(src, dst, 24 * per_host // cluster.num_hosts + 8)
    return coarse, coarse_of
