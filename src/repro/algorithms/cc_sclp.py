"""CC-SCLP: shortcutting label propagation (Stergiou et al. [78]).

Label propagation interleaved with pointer jumping: each round first
min-reduces neighbor labels (adjacent-vertex), then shortcuts each node's
label to its label's label (trans-vertex). The shortcut lets labels leap
across many hops per round, which is why the paper measures ~14x over
plain CC-LP on the high-diameter road graph.
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import kimbap_while, par_for


def cc_sclp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
) -> AlgorithmResult:
    """Run shortcutting label propagation; values are component ids."""
    label = NodePropMap(cluster, pgraph, "sclp_label", variant=variant)
    label.set_initial(lambda node: node)
    label.pin_mirrors(invariant="none")

    def round_body() -> None:
        # Propagation step (adjacent): push my label to neighbors.
        def propagate(ctx) -> None:
            ctx.charge(1)
            if not label.is_active(ctx.host, ctx.node):
                return  # data-driven: only changed labels push
            node_label = label.read_local(ctx.host, ctx.local)
            for edge in ctx.edges():
                dst = ctx.edge_dst(edge)
                label.reduce(ctx.host, ctx.thread, dst, node_label, MIN)

        par_for(cluster, pgraph, "all", propagate, label="sclp:prop")
        label.reduce_sync()
        label.broadcast_sync()

        # Shortcut step (trans): label <- label(label).
        def request(ctx) -> None:
            node_label = label.read_local(ctx.host, ctx.local)
            label.request(ctx.host, node_label)

        par_for(
            cluster,
            pgraph,
            "masters",
            request,
            kind=PhaseKind.REQUEST_COMPUTE,
            label="sclp:req",
        )
        label.request_sync()

        def shortcut(ctx) -> None:
            node_label = label.read_local(ctx.host, ctx.local)
            label_of_label = label.read(ctx.host, node_label)
            if node_label != label_of_label:
                label.reduce(ctx.host, ctx.thread, ctx.node, label_of_label, MIN)

        par_for(cluster, pgraph, "masters", shortcut, label="sclp:short")
        label.reduce_sync()
        label.broadcast_sync()

    rounds = kimbap_while(label, round_body)
    label.unpin_mirrors()
    return AlgorithmResult(name="CC-SCLP", values=label.snapshot(), rounds=rounds)
