"""CC-SCLP: shortcutting label propagation (Stergiou et al. [78]).

Label propagation interleaved with pointer jumping: each round first
min-reduces neighbor labels (adjacent-vertex), then shortcuts each node's
label to its label's label (trans-vertex). The shortcut lets labels leap
across many hops per round, which is why the paper measures ~14x over
plain CC-LP on the high-diameter road graph.
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmResult, resolve_executor
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.exec import (
    ActiveFilter,
    EdgePush,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    SyncStep,
)
from repro.partition.base import PartitionedGraph


def cc_sclp_plan(pgraph: PartitionedGraph, label: NodePropMap) -> Plan:
    """One propagate + shortcut round as an operator plan."""

    def request(ctx) -> None:
        node_label = label.read_local(ctx.host, ctx.local)
        label.request(ctx.host, node_label)

    def shortcut(ctx) -> None:
        node_label = label.read_local(ctx.host, ctx.local)
        label_of_label = label.read(ctx.host, node_label)
        if node_label != label_of_label:
            label.reduce(ctx.host, ctx.thread, ctx.node, label_of_label, MIN)

    return Plan(
        name="cc_sclp",
        pgraph=pgraph,
        steps=[
            # Propagation step (adjacent): push my label to neighbors;
            # data-driven, only changed labels push.
            OperatorStep(
                Operator(
                    "sclp:prop",
                    "all",
                    EdgePush(
                        target=label,
                        op=MIN,
                        source=label,
                        # Declarative frontier: only labels that changed
                        # last round push (compiled under codegen).
                        require_active=ActiveFilter(label),
                        skip_zero_degree=False,
                        charge_per_source=1,
                    ),
                )
            ),
            SyncStep(label, "reduce"),
            SyncStep(label, "broadcast"),
            # Shortcut step (trans): label <- label(label).
            OperatorStep(
                Operator(
                    "sclp:req",
                    "masters",
                    ScalarKernel(request, read_names=(label.name,)),
                    kind=PhaseKind.REQUEST_COMPUTE,
                )
            ),
            SyncStep(label, "request"),
            OperatorStep(
                Operator(
                    "sclp:short",
                    "masters",
                    ScalarKernel(
                        shortcut,
                        read_names=(label.name,),
                        write_names=((label.name, MIN.name),),
                    ),
                )
            ),
            SyncStep(label, "reduce"),
            SyncStep(label, "broadcast"),
        ],
        quiesce=(label,),
    )


def cc_sclp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run shortcutting label propagation; values are component ids."""
    executor = resolve_executor(cluster, executor)
    label = NodePropMap(cluster, pgraph, "sclp_label", variant=variant)
    executor.init_map(label, lambda nodes: nodes.copy())
    label.pin_mirrors(invariant="none")
    rounds = executor.run(cc_sclp_plan(pgraph, label))
    label.unpin_mirrors()
    return AlgorithmResult(name="CC-SCLP", values=label.snapshot(), rounds=rounds)
