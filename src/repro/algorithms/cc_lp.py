"""CC-LP: connected components by label propagation (adjacent-vertex only).

Each node carries a component label (initially its own id); every round,
each node push-reduces its label onto its neighbors with ``min``. The only
reads are of the active node itself, so the compiler's adjacent-neighbors
analysis pins mirrors with the ``push`` invariant and elides all request
phases - this is the algorithm the paper uses to show Kimbap matches Gluon
on adjacent-vertex programs (Figures 9c/10c).

Converges in O(diameter) rounds: fast on power-law graphs, slow on road
networks (the motivation for CC-SV / CC-SCLP).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import kimbap_while, par_for, par_for_bulk


def cc_lp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    bulk: bool = False,
) -> AlgorithmResult:
    """Run label-propagation connected components; values are component ids."""
    label = NodePropMap(cluster, pgraph, "cc_label", variant=variant)
    if bulk:
        label.set_initial_bulk(lambda nodes: nodes.copy())
    else:
        label.set_initial(lambda node: node)
    label.pin_mirrors(invariant="push")

    def round_body() -> None:
        def operator(ctx) -> None:
            if ctx.part.degree(ctx.local) == 0:
                # Push-style: proxies without local out-edges do nothing, and
                # under the push invariant their mirror values are never fed.
                return
            ctx.charge(1)
            if not label.is_active(ctx.host, ctx.node):
                # Data-driven: only labels that changed last round push
                # (Gluon's worklist execution; also what keeps CC-LP's
                # per-round work proportional to the frontier).
                return
            node_label = label.read_local(ctx.host, ctx.local)
            for edge in ctx.edges():
                dst = ctx.edge_dst(edge)
                label.reduce(ctx.host, ctx.thread, dst, node_label, MIN)

        par_for(cluster, pgraph, "all", operator, label="cc_lp")
        label.reduce_sync()
        label.broadcast_sync()

    def round_body_bulk() -> None:
        def operator(ctx) -> None:
            degs = ctx.degrees()
            sel = np.flatnonzero(degs > 0)
            if sel.size == 0:
                return
            ctx.charge(int(sel.size))
            sel = sel[label.is_active_bulk(ctx.host, ctx.node_ids[sel])]
            if sel.size == 0:
                return
            labels = label.read_local_bulk(ctx.host, ctx.local_ids[sel])
            source_pos, edge_ids = ctx.expand_edges(ctx.local_ids[sel])
            if edge_ids.size == 0:
                return
            label.reduce_bulk(
                ctx.host,
                ctx.threads[sel][source_pos],
                ctx.edge_dst(edge_ids),
                labels[source_pos],
                MIN,
            )

        par_for_bulk(cluster, pgraph, "all", operator, label="cc_lp")
        label.reduce_sync()
        label.broadcast_sync()

    rounds = kimbap_while(label, round_body_bulk if bulk else round_body)
    label.unpin_mirrors()
    return AlgorithmResult(name="CC-LP", values=label.snapshot(), rounds=rounds)
