"""CC-LP: connected components by label propagation (adjacent-vertex only).

Each node carries a component label (initially its own id); every round,
each node push-reduces its label onto its neighbors with ``min``. The only
reads are of the active node itself, so the compiler's adjacent-neighbors
analysis pins mirrors with the ``push`` invariant and elides all request
phases - this is the algorithm the paper uses to show Kimbap matches Gluon
on adjacent-vertex programs (Figures 9c/10c).

Converges in O(diameter) rounds: fast on power-law graphs, slow on road
networks (the motivation for CC-SV / CC-SCLP).
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmResult, resolve_executor
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.exec import (
    ActiveFilter,
    EdgePush,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ResidualDecl,
    SyncStep,
)
from repro.partition.base import PartitionedGraph


def cc_lp_plan(pgraph: PartitionedGraph, label: NodePropMap) -> Plan:
    """One CC-LP round as an operator plan.

    Push-style: proxies without local out-edges do nothing (and under the
    push invariant their mirror values are never fed); data-driven
    activity keeps per-round work proportional to the frontier (Gluon's
    worklist execution).
    """
    return Plan(
        name="cc_lp",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "cc_lp",
                    "all",
                    EdgePush(
                        target=label,
                        op=MIN,
                        source=label,
                        # Declarative frontier: labels that improved last
                        # round (serializes in the plan; compiles to a
                        # frontier-aware kernel under codegen).
                        require_active=ActiveFilter(label),
                        charge_per_source=1,
                        # Async eligibility: labels improve monotonically
                        # under MIN (the classic asynchronous-safe program),
                        # so the priority/delta engine propagates the
                        # smallest labels first with no global barrier.
                        residual=ResidualDecl(mode="monotone"),
                    ),
                )
            ),
            SyncStep(label, "reduce"),
            SyncStep(label, "broadcast"),
        ],
        quiesce=(label,),
    )


def cc_lp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
    bulk: bool | None = None,
) -> AlgorithmResult:
    """Run label-propagation connected components; values are component ids."""
    executor = resolve_executor(cluster, executor, bulk, "cc_lp")
    label = NodePropMap(cluster, pgraph, "cc_label", variant=variant)
    executor.init_map(label, lambda nodes: nodes.copy())
    label.pin_mirrors(invariant="push")
    rounds = executor.run(cc_lp_plan(pgraph, label))
    label.unpin_mirrors()
    return AlgorithmResult(name="CC-LP", values=label.snapshot(), rounds=rounds)
