"""MSF: Boruvka's minimum spanning forest [15] (trans-vertex).

Classic parallel Boruvka through node-property maps, as in Section 6.1:
one map tracks each node's component parent (flattened by pointer jumping
each round); a second, per-round map receives each component's minimum
outgoing edge via a lexicographic min-reduction keyed by the component
root - a reduction onto a dynamically computed node, impossible in
adjacent-vertex frameworks. Components then hook along their chosen edges
(larger root onto smaller, which provably cannot form parent cycles) and
the chosen edges join the forest.

Ties are broken by (weight, min endpoint, max endpoint), a strict total
order, so mutual picks are identical edges and the forest stays acyclic
even with equal weights.
"""

from __future__ import annotations

import math

from repro.algorithms.common import (
    AlgorithmResult,
    resolve_executor,
    shortcut_until_flat,
)
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN, PAIR_MIN
from repro.core.variants import RuntimeVariant
from repro.exec import Executor, Operator, OperatorStep, Plan, ScalarKernel, SyncStep
from repro.partition.base import PartitionedGraph
from repro.runtime.bool_reducer import BoolReducer

SENTINEL = (math.inf, -1, -1, -1)


def boruvka_msf(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run Boruvka MSF; values are component roots, extra["forest"] the edges."""
    executor = resolve_executor(cluster, executor)
    parent = NodePropMap(cluster, pgraph, "msf_parent", variant=variant)
    executor.init_map(parent, lambda nodes: nodes.copy())
    # The per-round minimum-outgoing-edge map (the paper's second map); it
    # is reset to the sentinel each Boruvka round rather than reallocated.
    best_edge = NodePropMap(
        cluster, pgraph, "msf_best", variant=variant, value_nbytes=32
    )
    work_done = BoolReducer(cluster, "msf_work")
    forest: set[tuple[int, int, float]] = set()

    def find_minimum(ctx) -> None:
        own_component = parent.read_local(ctx.host, ctx.local)
        for edge in ctx.edges():
            dst_local = ctx.edge_dst_local(edge)
            neighbor_component = parent.read_local(ctx.host, dst_local)
            if own_component == neighbor_component:
                continue
            node, dst = ctx.node, ctx.edge_dst(edge)
            candidate = (
                ctx.edge_weight(edge),
                min(node, dst),
                max(node, dst),
                neighbor_component,
            )
            best_edge.reduce(ctx.host, ctx.thread, own_component, candidate, PAIR_MIN)
            work_done.reduce(ctx.host, True)

    find_plan = Plan(
        name="msf:min",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "msf:min",
                    "all",
                    ScalarKernel(
                        find_minimum,
                        read_names=(parent.name,),
                        write_names=((best_edge.name, PAIR_MIN.name),),
                        # the work-done vote's host flags are compute-phase
                        # effects too (host-shard execution ships them)
                        extra_effects=(work_done,),
                    ),
                )
            ),
            SyncStep(best_edge, "reduce"),
        ],
        once=True,
    )

    def hook(ctx) -> None:
        chosen = best_edge.read_local(ctx.host, ctx.local)
        if chosen == SENTINEL:
            return
        weight, endpoint_a, endpoint_b, other_component = chosen
        forest.add((endpoint_a, endpoint_b, weight))
        larger = max(ctx.node, other_component)
        smaller = min(ctx.node, other_component)
        parent.reduce(ctx.host, ctx.thread, larger, smaller, MIN)

    hook_plan = Plan(
        name="msf:hook",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "msf:hook",
                    "masters",
                    ScalarKernel(
                        hook,
                        read_names=(best_edge.name,),
                        write_names=((parent.name, MIN.name),),
                        # the body appends chosen edges to the host-global
                        # forest set: not per-host addressable, so this
                        # phase runs replicated under parallel execution
                        host_local=False,
                    ),
                )
            ),
            SyncStep(parent, "reduce"),
        ],
        once=True,
    )

    total_rounds = 0
    boruvka_round = 0
    while True:
        total_rounds += shortcut_until_flat(cluster, pgraph, parent, executor=executor)
        parent.pin_mirrors(invariant="none")
        best_edge.reset_values(lambda node: SENTINEL)
        work_done.set_all(False)
        executor.run(find_plan)
        work_done.sync()
        if not work_done.read():
            parent.unpin_mirrors()
            break
        executor.run(hook_plan)
        parent.unpin_mirrors()
        total_rounds += 1
        boruvka_round += 1
        if boruvka_round > pgraph.num_nodes:
            raise RuntimeError("Boruvka failed to converge")
    total_rounds += shortcut_until_flat(cluster, pgraph, parent, executor=executor)
    total_weight = sum(weight for _, _, weight in forest)
    return AlgorithmResult(
        name="MSF",
        values=parent.snapshot(),
        rounds=total_rounds,
        stats={
            "forest_weight": total_weight,
            "forest_edges": float(len(forest)),
            "boruvka_rounds": boruvka_round,
        },
        extra={"forest": sorted(forest)},
    )
