"""SSSP / BFS: data-driven Bellman-Ford (adjacent-vertex).

Part of the standard distributed-graph suite (Gluon's evaluation runs
bfs/cc/pr/sssp); included here as additional adjacent-vertex programs on
the node-property map. Push-style: a node whose distance improved last
round relaxes its out-edges (``dist(dst) <- min(dist(dst), dist(src) +
w)``). The activity tracker keeps per-round work proportional to the
frontier, and BFS is the unit-weight special case whose round count equals
the eccentricity of the source.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import AlgorithmResult, resolve_executor
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.exec import (
    ActiveFilter,
    CmpFilter,
    EdgePush,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ResidualDecl,
    SyncStep,
)
from repro.partition.base import PartitionedGraph

UNREACHED = math.inf


def sssp_plan(
    pgraph: PartitionedGraph, dist: NodePropMap, unit_weights: bool = False
) -> Plan:
    """One Bellman-Ford relaxation round as an operator plan."""
    return Plan(
        name="sssp",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "sssp",
                    "all",
                    EdgePush(
                        target=dist,
                        op=MIN,
                        source=dist,
                        # Declarative filters: the frontier (distances
                        # that improved last round) and the reachability
                        # predicate serialize in the plan and compile to
                        # a frontier-aware kernel instead of running the
                        # interpreted bulk pipeline.
                        require_active=ActiveFilter(dist),
                        charge_per_source=1,
                        value_filter=CmpFilter("ne", UNREACHED),
                        with_weight="add",
                        unit_weights=unit_weights,
                        # Async eligibility: distances improve monotonically
                        # under MIN, so label-correcting relaxation with a
                        # largest-improvement-first queue reaches the same
                        # shortest paths without round barriers.
                        residual=ResidualDecl(mode="monotone"),
                    ),
                )
            ),
            SyncStep(dist, "reduce"),
            SyncStep(dist, "broadcast"),
        ],
        quiesce=(dist,),
    )


def sssp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    source: int = 0,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    unit_weights: bool = False,
    executor: Executor | None = None,
    bulk: bool | None = None,
) -> AlgorithmResult:
    """Single-source shortest paths; values are distances (inf = unreached)."""
    executor = resolve_executor(cluster, executor, bulk, "sssp")
    if not 0 <= source < pgraph.num_nodes:
        raise ValueError(f"source {source} out of range")
    dist = NodePropMap(cluster, pgraph, "sssp_dist", variant=variant)
    executor.init_map(dist, lambda nodes: np.where(nodes == source, 0.0, UNREACHED))
    dist.pin_mirrors(invariant="none")
    rounds = executor.run(sssp_plan(pgraph, dist, unit_weights=unit_weights))
    dist.unpin_mirrors()
    values = dist.snapshot()
    reached = sum(1 for v in values.values() if v != UNREACHED)
    return AlgorithmResult(
        name="SSSP",
        values=values,
        rounds=rounds,
        stats={"reached": float(reached)},
    )


def bfs(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    source: int = 0,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
    bulk: bool | None = None,
) -> AlgorithmResult:
    """BFS levels from ``source``: unit-weight SSSP with integer levels."""
    executor = resolve_executor(cluster, executor, bulk, "bfs")
    result = sssp(
        cluster,
        pgraph,
        source=source,
        variant=variant,
        unit_weights=True,
        executor=executor,
    )
    levels = {
        node: (int(value) if value != UNREACHED else UNREACHED)
        for node, value in result.values.items()
    }
    return AlgorithmResult(
        name="BFS", values=levels, rounds=result.rounds, stats=dict(result.stats)
    )
