"""SSSP / BFS: data-driven Bellman-Ford (adjacent-vertex).

Part of the standard distributed-graph suite (Gluon's evaluation runs
bfs/cc/pr/sssp); included here as additional adjacent-vertex programs on
the node-property map. Push-style: a node whose distance improved last
round relaxes its out-edges (``dist(dst) <- min(dist(dst), dist(src) +
w)``). The activity tracker keeps per-round work proportional to the
frontier, and BFS is the unit-weight special case whose round count equals
the eccentricity of the source.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import kimbap_while, par_for, par_for_bulk

UNREACHED = math.inf


def sssp(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    source: int = 0,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    unit_weights: bool = False,
    bulk: bool = False,
) -> AlgorithmResult:
    """Single-source shortest paths; values are distances (inf = unreached)."""
    if not 0 <= source < pgraph.num_nodes:
        raise ValueError(f"source {source} out of range")
    dist = NodePropMap(cluster, pgraph, "sssp_dist", variant=variant)
    if bulk:
        dist.set_initial_bulk(lambda nodes: np.where(nodes == source, 0.0, UNREACHED))
    else:
        dist.set_initial(lambda node: 0.0 if node == source else UNREACHED)
    dist.pin_mirrors(invariant="none")

    def round_body() -> None:
        def relax(ctx) -> None:
            if ctx.part.degree(ctx.local) == 0:
                return
            ctx.charge(1)
            if not dist.is_active(ctx.host, ctx.node):
                return
            my_dist = dist.read_local(ctx.host, ctx.local)
            if my_dist == UNREACHED:
                return
            for edge in ctx.edges():
                weight = 1.0 if unit_weights else ctx.edge_weight(edge)
                dist.reduce(
                    ctx.host, ctx.thread, ctx.edge_dst(edge), my_dist + weight, MIN
                )

        par_for(cluster, pgraph, "all", relax, label="sssp")
        dist.reduce_sync()
        dist.broadcast_sync()

    def round_body_bulk() -> None:
        def relax(ctx) -> None:
            degs = ctx.degrees()
            sel = np.flatnonzero(degs > 0)
            if sel.size == 0:
                return
            ctx.charge(int(sel.size))
            sel = sel[dist.is_active_bulk(ctx.host, ctx.node_ids[sel])]
            if sel.size == 0:
                return
            dists = dist.read_local_bulk(ctx.host, ctx.local_ids[sel])
            reachable = dists != UNREACHED
            sel = sel[reachable]
            dists = dists[reachable]
            if sel.size == 0:
                return
            source_pos, edge_ids = ctx.expand_edges(ctx.local_ids[sel])
            if edge_ids.size == 0:
                return
            weights = (
                np.ones(edge_ids.size, dtype=np.float64)
                if unit_weights
                else ctx.edge_weights(edge_ids)
            )
            dist.reduce_bulk(
                ctx.host,
                ctx.threads[sel][source_pos],
                ctx.edge_dst(edge_ids),
                dists[source_pos] + weights,
                MIN,
            )

        par_for_bulk(cluster, pgraph, "all", relax, label="sssp")
        dist.reduce_sync()
        dist.broadcast_sync()

    rounds = kimbap_while(dist, round_body_bulk if bulk else round_body)
    dist.unpin_mirrors()
    values = dist.snapshot()
    reached = sum(1 for v in values.values() if v != UNREACHED)
    return AlgorithmResult(
        name="SSSP",
        values=values,
        rounds=rounds,
        stats={"reached": float(reached)},
    )


def bfs(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    source: int = 0,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    bulk: bool = False,
) -> AlgorithmResult:
    """BFS levels from ``source``: unit-weight SSSP with integer levels."""
    result = sssp(
        cluster, pgraph, source=source, variant=variant, unit_weights=True, bulk=bulk
    )
    levels = {
        node: (int(value) if value != UNREACHED else UNREACHED)
        for node, value in result.values.items()
    }
    return AlgorithmResult(
        name="BFS", values=levels, rounds=result.rounds, stats=dict(result.stats)
    )
