"""MIS: priority-based maximal independent set (adjacent-vertex only).

Following the priority MIS of Burtscher et al. [17]: each node's priority
is its global degree, tie-broken by a hash of its id, giving a strict total
order. Every round:

1. *blocked* - for every edge between two undecided nodes where the
   neighbor is stronger, the weaker node's ``blocked`` property is
   max-reduced with the round number (round-stamping doubles as a free
   per-round reset);
2. *select* - an undecided master not blocked this round joins the set;
3. *exclude* - neighbors of IN nodes become OUT.

The strict total order guarantees every neighborhood's strongest undecided
node is selected each round, so the loop always progresses. Two persistent
node-property maps (state, priority) are used, matching the paper; the
round-stamped blocked map is the auxiliary reduction target.
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MAX, SUM
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import kimbap_while, par_for

UNDECIDED = 0
IN_SET = 1
OUT = 2


def _hash_priority(node: int) -> int:
    """Deterministic id scrambling so ties don't follow node order."""
    mixed = (node * 2654435761) & 0xFFFFFFFF
    return mixed ^ (mixed >> 16)


def mis(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
) -> AlgorithmResult:
    """Run priority MIS; values are IN_SET(1)/OUT(2) states per node."""
    # Global degrees: each host SUM-reduces its local out-degree share
    # (under a vertex-cut no single host knows a node's full degree).
    degree = NodePropMap(cluster, pgraph, "mis_degree", variant=variant)
    degree.set_initial(lambda node: 0)

    def degree_operator(ctx) -> None:
        local_degree = ctx.part.degree(ctx.local)
        if local_degree:
            degree.reduce(ctx.host, ctx.thread, ctx.node, local_degree, SUM)

    par_for(cluster, pgraph, "all", degree_operator, label="mis:deg")
    degree.reduce_sync()
    degrees = degree.snapshot()

    priority = NodePropMap(
        cluster, pgraph, "mis_priority", variant=variant, value_nbytes=24
    )
    priority.set_initial(
        lambda node: (degrees[node], _hash_priority(node), node)
    )
    priority.pin_mirrors(invariant="none")

    state = NodePropMap(cluster, pgraph, "mis_state", variant=variant)
    state.set_initial(lambda node: UNDECIDED)
    state.pin_mirrors(invariant="none")

    blocked = NodePropMap(cluster, pgraph, "mis_blocked", variant=variant)
    blocked.set_initial(lambda node: -1)

    round_number = [0]

    def round_body() -> None:
        this_round = round_number[0]
        round_number[0] += 1

        def mark_blocked(ctx) -> None:
            if state.read_local(ctx.host, ctx.local) != UNDECIDED:
                return
            my_priority = priority.read_local(ctx.host, ctx.local)
            for edge in ctx.edges():
                dst_local = ctx.edge_dst_local(edge)
                if state.read_local(ctx.host, dst_local) != UNDECIDED:
                    continue
                if priority.read_local(ctx.host, dst_local) > my_priority:
                    blocked.reduce(ctx.host, ctx.thread, ctx.node, this_round, MAX)
                    break

        par_for(cluster, pgraph, "all", mark_blocked, label="mis:blocked")
        blocked.reduce_sync()

        def select(ctx) -> None:
            if state.read_local(ctx.host, ctx.local) != UNDECIDED:
                return
            if blocked.read_local(ctx.host, ctx.local) != this_round:
                state.reduce(ctx.host, ctx.thread, ctx.node, IN_SET, MAX)

        par_for(cluster, pgraph, "masters", select, label="mis:select")
        state.reduce_sync()
        state.broadcast_sync()

        def exclude(ctx) -> None:
            if state.read_local(ctx.host, ctx.local) != IN_SET:
                return
            for edge in ctx.edges():
                state.reduce(ctx.host, ctx.thread, ctx.edge_dst(edge), OUT, MAX)

        par_for(cluster, pgraph, "all", exclude, label="mis:exclude")
        state.reduce_sync()
        state.broadcast_sync()

    rounds = kimbap_while(state, round_body)
    state.unpin_mirrors()
    priority.unpin_mirrors()
    values = state.snapshot()
    return AlgorithmResult(
        name="MIS",
        values=values,
        rounds=rounds,
        stats={"set_size": sum(1 for v in values.values() if v == IN_SET)},
    )
