"""MIS: priority-based maximal independent set (adjacent-vertex only).

Following the priority MIS of Burtscher et al. [17]: each node's priority
is its global degree, tie-broken by a hash of its id, giving a strict total
order. Every round:

1. *blocked* - for every edge between two undecided nodes where the
   neighbor is stronger, the weaker node's ``blocked`` property is
   max-reduced with the round number (round-stamping doubles as a free
   per-round reset);
2. *select* - an undecided master not blocked this round joins the set;
3. *exclude* - neighbors of IN nodes become OUT.

The strict total order guarantees every neighborhood's strongest undecided
node is selected each round, so the loop always progresses. Two persistent
node-property maps (state, priority) are used, matching the paper; the
round-stamped blocked map is the auxiliary reduction target.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import AlgorithmResult, resolve_executor
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MAX
from repro.core.variants import RuntimeVariant
from repro.exec import (
    CmpFilter,
    DegreeReduce,
    EdgePush,
    Executor,
    HostStep,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    SyncStep,
)
from repro.partition.base import PartitionedGraph

UNDECIDED = 0
IN_SET = 1
OUT = 2


def _hash_priority(node: int) -> int:
    """Deterministic id scrambling so ties don't follow node order."""
    mixed = (node * 2654435761) & 0xFFFFFFFF
    return mixed ^ (mixed >> 16)


def mis_plan(
    pgraph: PartitionedGraph,
    state: NodePropMap,
    priority: NodePropMap,
    blocked: NodePropMap,
) -> Plan:
    """One blocked/select/exclude round as an operator plan.

    The round counter is a plain closure, deliberately *not* part of the
    recovery snapshot: stamps are monotone, so stale blocked stamps from
    before a crash can never equal a replayed round's fresh stamp.
    """
    round_number = [-1]

    def bump_round() -> None:
        round_number[0] += 1

    def mark_blocked(ctx) -> None:
        if state.read_local(ctx.host, ctx.local) != UNDECIDED:
            return
        my_priority = priority.read_local(ctx.host, ctx.local)
        for edge in ctx.edges():
            dst_local = ctx.edge_dst_local(edge)
            if state.read_local(ctx.host, dst_local) != UNDECIDED:
                continue
            if priority.read_local(ctx.host, dst_local) > my_priority:
                blocked.reduce(ctx.host, ctx.thread, ctx.node, round_number[0], MAX)
                break

    def select(ctx) -> None:
        if state.read_local(ctx.host, ctx.local) != UNDECIDED:
            return
        if blocked.read_local(ctx.host, ctx.local) != round_number[0]:
            state.reduce(ctx.host, ctx.thread, ctx.node, IN_SET, MAX)

    return Plan(
        name="mis",
        pgraph=pgraph,
        steps=[
            HostStep("mis:round", bump_round),
            OperatorStep(
                Operator(
                    "mis:blocked",
                    "all",
                    ScalarKernel(
                        mark_blocked,
                        read_names=(state.name, priority.name),
                        write_names=((blocked.name, MAX.name),),
                    ),
                )
            ),
            SyncStep(blocked, "reduce"),
            OperatorStep(
                Operator(
                    "mis:select",
                    "masters",
                    ScalarKernel(
                        select,
                        read_names=(state.name, blocked.name),
                        write_names=((state.name, MAX.name),),
                    ),
                )
            ),
            SyncStep(state, "reduce"),
            SyncStep(state, "broadcast"),
            OperatorStep(
                Operator(
                    "mis:exclude",
                    "all",
                    EdgePush(
                        target=state,
                        op=MAX,
                        source=state,
                        skip_zero_degree=False,
                        # Declarative: only IN nodes push the exclusion
                        # (serializes; compiles to a mask under codegen).
                        value_filter=CmpFilter("eq", IN_SET),
                        const_value=OUT,
                    ),
                )
            ),
            SyncStep(state, "reduce"),
            SyncStep(state, "broadcast"),
        ],
        quiesce=(state,),
    )


def mis(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run priority MIS; values are IN_SET(1)/OUT(2) states per node."""
    executor = resolve_executor(cluster, executor)
    # Global degrees: each host SUM-reduces its local out-degree share
    # (under a vertex-cut no single host knows a node's full degree).
    degree = NodePropMap(cluster, pgraph, "mis_degree", variant=variant)
    executor.init_map(degree, lambda nodes: np.zeros(nodes.size, dtype=np.int64))
    executor.run(
        Plan(
            name="mis:warmup",
            pgraph=pgraph,
            steps=[
                OperatorStep(Operator("mis:deg", "all", DegreeReduce(degree))),
                SyncStep(degree, "reduce"),
            ],
            once=True,
        )
    )
    degrees = degree.snapshot()

    priority = NodePropMap(
        cluster, pgraph, "mis_priority", variant=variant, value_nbytes=24
    )
    executor.init_map(
        priority,
        elementwise=lambda node: (degrees[node], _hash_priority(node), node),
    )
    priority.pin_mirrors(invariant="none")

    state = NodePropMap(cluster, pgraph, "mis_state", variant=variant)
    executor.init_map(
        state, lambda nodes: np.full(nodes.size, UNDECIDED, dtype=np.int64)
    )
    state.pin_mirrors(invariant="none")

    blocked = NodePropMap(cluster, pgraph, "mis_blocked", variant=variant)
    executor.init_map(blocked, lambda nodes: np.full(nodes.size, -1, dtype=np.int64))

    rounds = executor.run(mis_plan(pgraph, state, priority, blocked))
    state.unpin_mirrors()
    priority.unpin_mirrors()
    values = state.snapshot()
    return AlgorithmResult(
        name="MIS",
        values=values,
        rounds=rounds,
        stats={"set_size": sum(1 for v in values.values() if v == IN_SET)},
    )
