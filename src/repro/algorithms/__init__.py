"""The paper's seven graph algorithms on the Kimbap runtime (Table 2).

===========  =======================  ==============  ============
Algorithm    Problem                  Adjacent ops    Trans ops
===========  =======================  ==============  ============
LV           community detection      yes             yes
LD           community detection      yes             yes
MSF          minimum spanning forest  -               yes
CC-LP        connected components     yes             -
CC-SCLP      connected components     yes             yes
CC-SV        connected components     -               yes
MIS          maximal independent set  yes             -
===========  =======================  ==============  ============

Every algorithm is a function ``(cluster, pgraph, ...) -> AlgorithmResult``
operating through the node-property map API only, so all of them run
unchanged on every :class:`~repro.core.variants.RuntimeVariant`.
"""

from repro.algorithms.common import AlgorithmResult, OperatorKinds, ALGORITHM_OPERATORS
from repro.algorithms.cc_lp import cc_lp
from repro.algorithms.cc_sv import cc_sv
from repro.algorithms.cc_sclp import cc_sclp
from repro.algorithms.mis import mis
from repro.algorithms.louvain import louvain
from repro.algorithms.leiden import leiden
from repro.algorithms.boruvka import boruvka_msf
from repro.algorithms.kcore import k_core
from repro.algorithms.vertex_cover import vertex_cover
from repro.algorithms.sssp import bfs, sssp
from repro.algorithms.pagerank import pagerank

__all__ = [
    "AlgorithmResult",
    "OperatorKinds",
    "ALGORITHM_OPERATORS",
    "cc_lp",
    "cc_sv",
    "cc_sclp",
    "mis",
    "louvain",
    "leiden",
    "boruvka_msf",
    "k_core",
    "vertex_cover",
    "bfs",
    "sssp",
    "pagerank",
]
