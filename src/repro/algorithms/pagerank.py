"""PageRank: topology-driven power iteration (adjacent-vertex).

Residual-free formulation: every round each node pushes
``d * rank / out_degree`` to its neighbors (a SUM reduction into a fresh
contribution map) and the owner rebuilds ``rank = (1 - d) / N +
contribution``. Dangling mass is redistributed uniformly, keeping the
ranks a probability distribution (sum == 1), which is also the invariant
the tests check against networkx.

Under vertex cuts a node's out-degree spans hosts, so the global degrees
are themselves computed by a SUM reduction first - the same warm-up as
MIS and k-core.
"""

from __future__ import annotations

import math

from repro.algorithms.common import OVERWRITE, AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import SUM
from repro.core.variants import RuntimeVariant
from repro.faults.recovery import run_recoverable_loop
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import par_for


def pagerank(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_rounds: int = 100,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
) -> AlgorithmResult:
    """Compute PageRank; values sum to 1 over all nodes."""
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    num_nodes = pgraph.num_nodes
    if num_nodes == 0:
        return AlgorithmResult(name="PR", values={}, rounds=0)

    degree = NodePropMap(cluster, pgraph, "pr_degree", variant=variant)
    degree.set_initial(lambda node: 0)

    def degree_operator(ctx) -> None:
        local_degree = ctx.part.degree(ctx.local)
        if local_degree:
            degree.reduce(ctx.host, ctx.thread, ctx.node, local_degree, SUM)

    par_for(cluster, pgraph, "all", degree_operator, label="pr:deg")
    degree.reduce_sync()
    degrees = degree.snapshot()

    rank = NodePropMap(cluster, pgraph, "pr_rank", variant=variant)
    rank.set_initial(lambda node: 1.0 / num_nodes)
    rank.pin_mirrors(invariant="none")
    contribution = NodePropMap(cluster, pgraph, "pr_contrib", variant=variant)

    base = (1.0 - damping) / num_nodes
    # Loop-private state lives in one dict so crash recovery can snapshot
    # and restore it alongside the maps (the recoverable-loop contract).
    state = {
        "previous": {node: 1.0 / num_nodes for node in range(num_nodes)},
        "delta": math.inf,
    }

    def round_body() -> None:
        contribution.reset_values(lambda node: 0.0)
        previous = state["previous"]

        def push(ctx) -> None:
            local_degree = ctx.part.degree(ctx.local)
            if local_degree == 0:
                return
            node_rank = rank.read_local(ctx.host, ctx.local)
            share = damping * node_rank / degrees[ctx.node]
            ctx.charge(2)
            for edge in ctx.edges():
                contribution.reduce(
                    ctx.host, ctx.thread, ctx.edge_dst(edge), share, SUM
                )

        par_for(cluster, pgraph, "all", push, label="pr:push")
        contribution.reduce_sync()

        # Dangling nodes' mass redistributes uniformly (host-side scalar,
        # one allreduce worth of traffic rides the contribution sync).
        dangling = sum(
            previous[node] for node in range(num_nodes) if degrees[node] == 0
        )
        uniform = base + damping * dangling / num_nodes

        contributions = contribution.snapshot()

        def rebuild(ctx) -> None:
            new_rank = uniform + contributions.get(ctx.node, 0.0)
            ctx.charge(2)
            rank.reduce(ctx.host, ctx.thread, ctx.node, new_rank, OVERWRITE)

        par_for(cluster, pgraph, "masters", rebuild, label="pr:rebuild")
        rank.reduce_sync()
        rank.broadcast_sync()

        current = rank.snapshot()
        state["delta"] = sum(
            abs(current[node] - previous[node]) for node in range(num_nodes)
        )
        state["previous"] = current

    def restore_state(saved) -> None:
        state.clear()
        state.update(saved)

    # PR historically attributes all loop phases to round 0 (no
    # advance_round); keep that, while still gaining checkpoint/recovery.
    rounds = run_recoverable_loop(
        cluster,
        [rank, contribution],
        round_body,
        converged=lambda: state["delta"] < tolerance,
        max_rounds=max_rounds,
        advance_rounds=False,
        extra_snapshot=lambda: dict(state),
        extra_restore=restore_state,
    )
    rank.unpin_mirrors()
    previous = state["previous"]
    return AlgorithmResult(
        name="PR",
        values=previous,
        rounds=rounds,
        stats={"delta": state["delta"], "mass": sum(previous.values())},
    )
