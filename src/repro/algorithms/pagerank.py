"""PageRank: topology-driven power iteration (adjacent-vertex).

Residual-free formulation: every round each node pushes
``d * rank / out_degree`` to its neighbors (a SUM reduction into a fresh
contribution map) and the owner rebuilds ``rank = (1 - d) / N +
contribution``. Dangling mass is redistributed uniformly, keeping the
ranks a probability distribution (sum == 1), which is also the invariant
the tests check against networkx.

Under vertex cuts a node's out-degree spans hosts, so the global degrees
are themselves computed by a SUM reduction first - the same warm-up as
MIS and k-core.

``bulk=True`` runs the vectorized execution path (``par_for_bulk`` +
``reduce_bulk``): the same operators expressed over whole iteration-set
arrays, with byte-identical counters, modeled time, and rank values (the
scalar path stays as the reference implementation and equivalence oracle).
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import OVERWRITE, AlgorithmResult
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import SUM
from repro.core.variants import RuntimeVariant
from repro.faults.recovery import run_recoverable_loop
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import par_for, par_for_bulk


def pagerank(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_rounds: int = 100,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    bulk: bool = False,
) -> AlgorithmResult:
    """Compute PageRank; values sum to 1 over all nodes."""
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    num_nodes = pgraph.num_nodes
    if num_nodes == 0:
        return AlgorithmResult(name="PR", values={}, rounds=0)

    degree = NodePropMap(cluster, pgraph, "pr_degree", variant=variant)
    if bulk:
        degree.set_initial_bulk(lambda nodes: np.zeros(nodes.size, dtype=np.int64))

        def degree_operator_bulk(ctx) -> None:
            degs = ctx.degrees()
            sel = np.flatnonzero(degs > 0)
            if sel.size:
                degree.reduce_bulk(
                    ctx.host, ctx.threads[sel], ctx.node_ids[sel], degs[sel], SUM
                )

        par_for_bulk(cluster, pgraph, "all", degree_operator_bulk, label="pr:deg")
    else:
        degree.set_initial(lambda node: 0)

        def degree_operator(ctx) -> None:
            local_degree = ctx.part.degree(ctx.local)
            if local_degree:
                degree.reduce(ctx.host, ctx.thread, ctx.node, local_degree, SUM)

        par_for(cluster, pgraph, "all", degree_operator, label="pr:deg")
    degree.reduce_sync()
    if bulk:
        degrees_arr = degree.snapshot_array()
    else:
        degrees = degree.snapshot()

    rank = NodePropMap(cluster, pgraph, "pr_rank", variant=variant)
    if bulk:
        rank.set_initial_bulk(lambda nodes: np.full(nodes.size, 1.0 / num_nodes))
    else:
        rank.set_initial(lambda node: 1.0 / num_nodes)
    rank.pin_mirrors(invariant="none")
    contribution = NodePropMap(cluster, pgraph, "pr_contrib", variant=variant)

    base = (1.0 - damping) / num_nodes
    # Loop-private state lives in one dict so crash recovery can snapshot
    # and restore it alongside the maps (the recoverable-loop contract).
    state: dict = {
        "previous": (
            np.full(num_nodes, 1.0 / num_nodes)
            if bulk
            else {node: 1.0 / num_nodes for node in range(num_nodes)}
        ),
        "delta": math.inf,
    }

    def round_body() -> None:
        contribution.reset_values(lambda node: 0.0)
        previous = state["previous"]

        def push(ctx) -> None:
            local_degree = ctx.part.degree(ctx.local)
            if local_degree == 0:
                return
            node_rank = rank.read_local(ctx.host, ctx.local)
            share = damping * node_rank / degrees[ctx.node]
            ctx.charge(2)
            for edge in ctx.edges():
                contribution.reduce(
                    ctx.host, ctx.thread, ctx.edge_dst(edge), share, SUM
                )

        par_for(cluster, pgraph, "all", push, label="pr:push")
        contribution.reduce_sync()

        # Dangling nodes' mass redistributes uniformly (host-side scalar,
        # one allreduce worth of traffic rides the contribution sync).
        dangling = sum(
            previous[node] for node in range(num_nodes) if degrees[node] == 0
        )
        uniform = base + damping * dangling / num_nodes

        contributions = contribution.snapshot()

        def rebuild(ctx) -> None:
            new_rank = uniform + contributions.get(ctx.node, 0.0)
            ctx.charge(2)
            rank.reduce(ctx.host, ctx.thread, ctx.node, new_rank, OVERWRITE)

        par_for(cluster, pgraph, "masters", rebuild, label="pr:rebuild")
        rank.reduce_sync()
        rank.broadcast_sync()

        current = rank.snapshot()
        state["delta"] = sum(
            abs(current[node] - previous[node]) for node in range(num_nodes)
        )
        state["previous"] = current

    def round_body_bulk() -> None:
        contribution.reset_values_bulk(lambda nodes: np.zeros(nodes.size))
        previous = state["previous"]

        def push(ctx) -> None:
            degs = ctx.degrees()
            sel = np.flatnonzero(degs > 0)
            if sel.size == 0:
                return
            ranks = rank.read_local_bulk(ctx.host, ctx.local_ids[sel])
            shares = damping * ranks / degrees_arr[ctx.node_ids[sel]]
            ctx.charge(int(2 * sel.size))
            source_pos, edge_ids = ctx.expand_edges(ctx.local_ids[sel])
            if edge_ids.size:
                contribution.reduce_bulk(
                    ctx.host,
                    ctx.threads[sel][source_pos],
                    ctx.edge_dst(edge_ids),
                    shares[source_pos],
                    SUM,
                )

        par_for_bulk(cluster, pgraph, "all", push, label="pr:push")
        contribution.reduce_sync()

        dangling = sum(previous[degrees_arr == 0].tolist())
        uniform = base + damping * dangling / num_nodes

        contributions = contribution.snapshot_array()

        def rebuild(ctx) -> None:
            new_ranks = uniform + contributions[ctx.node_ids]
            ctx.charge(int(2 * ctx.node_ids.size))
            rank.reduce_bulk(ctx.host, ctx.threads, ctx.node_ids, new_ranks, OVERWRITE)

        par_for_bulk(cluster, pgraph, "masters", rebuild, label="pr:rebuild")
        rank.reduce_sync()
        rank.broadcast_sync()

        current = rank.snapshot_array()
        state["delta"] = sum(np.abs(current - previous).tolist())
        state["previous"] = current

    def restore_state(saved) -> None:
        state.clear()
        state.update(saved)

    # PR historically attributes all loop phases to round 0 (no
    # advance_round); keep that, while still gaining checkpoint/recovery.
    rounds = run_recoverable_loop(
        cluster,
        [rank, contribution],
        round_body_bulk if bulk else round_body,
        converged=lambda: state["delta"] < tolerance,
        max_rounds=max_rounds,
        advance_rounds=False,
        extra_snapshot=lambda: dict(state),
        extra_restore=restore_state,
    )
    rank.unpin_mirrors()
    if bulk:
        # The snapshot dict (same content and iteration order as the scalar
        # path's final in-loop snapshot) is the returned value mapping.
        if rounds:
            previous = rank.snapshot()
        else:
            previous = {
                node: value
                for node, value in enumerate(state["previous"].tolist())
            }
    else:
        previous = state["previous"]
    return AlgorithmResult(
        name="PR",
        values=previous,
        rounds=rounds,
        stats={"delta": state["delta"], "mass": sum(previous.values())},
    )
