"""PageRank: topology-driven power iteration (adjacent-vertex).

Residual-free formulation: every round each node pushes
``d * rank / out_degree`` to its neighbors (a SUM reduction into a fresh
contribution map) and the owner rebuilds ``rank = (1 - d) / N +
contribution``. Dangling mass is redistributed uniformly, keeping the
ranks a probability distribution (sum == 1), which is also the invariant
the tests check against networkx.

Under vertex cuts a node's out-degree spans hosts, so the global degrees
are themselves computed by a SUM reduction first - the same warm-up as
MIS and k-core.

The whole round is one ``repro.exec`` plan (warm-up, push, dangling
redistribution, rebuild, delta check); the executor picks the scalar or
vectorized backend with byte-identical counters, modeled time, and rank
values.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import OVERWRITE, AlgorithmResult, resolve_executor
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import SUM
from repro.core.variants import RuntimeVariant
from repro.exec import (
    DegreeReduce,
    EdgePush,
    Executor,
    HostStep,
    NodeUpdate,
    Operator,
    OperatorStep,
    Plan,
    ResetStep,
    ResidualDecl,
    SyncStep,
)
from repro.partition.base import PartitionedGraph


def pagerank(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    damping: float = 0.85,
    tolerance: float = 1e-9,
    max_rounds: int = 100,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
    bulk: bool | None = None,
) -> AlgorithmResult:
    """Compute PageRank; values sum to 1 over all nodes."""
    executor = resolve_executor(cluster, executor, bulk, "pagerank")
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    num_nodes = pgraph.num_nodes
    if num_nodes == 0:
        return AlgorithmResult(name="PR", values={}, rounds=0)

    degree = NodePropMap(cluster, pgraph, "pr_degree", variant=variant)
    executor.init_map(degree, lambda nodes: np.zeros(nodes.size, dtype=np.int64))
    executor.run(
        Plan(
            name="pr:warmup",
            pgraph=pgraph,
            steps=[
                OperatorStep(Operator("pr:deg", "all", DegreeReduce(degree))),
                SyncStep(degree, "reduce"),
            ],
            once=True,
        )
    )
    degrees = degree.snapshot_array()

    rank = NodePropMap(cluster, pgraph, "pr_rank", variant=variant)
    executor.init_map(rank, lambda nodes: np.full(nodes.size, 1.0 / num_nodes))
    rank.pin_mirrors(invariant="none")
    contribution = NodePropMap(cluster, pgraph, "pr_contrib", variant=variant)

    base = (1.0 - damping) / num_nodes
    # Loop-private state lives in one dict so crash recovery can snapshot
    # and restore it alongside the maps (the recoverable-loop contract).
    state: dict = {"previous": np.full(num_nodes, 1.0 / num_nodes), "delta": math.inf}

    def redistribute_dangling() -> None:
        # Dangling nodes' mass redistributes uniformly (host-side scalar,
        # one allreduce worth of traffic rides the contribution sync).
        dangling = sum(state["previous"][degrees == 0].tolist())
        state["uniform"] = base + damping * dangling / num_nodes
        state["contributions"] = contribution.snapshot_array()

    def update_delta() -> None:
        current = rank.snapshot_array()
        state["delta"] = sum(np.abs(current - state["previous"]).tolist())
        state["previous"] = current

    def restore_state(saved) -> None:
        state.clear()
        state.update(saved)

    plan = Plan(
        name="pagerank",
        pgraph=pgraph,
        steps=[
            ResetStep(contribution, lambda nodes: np.zeros(nodes.size)),
            OperatorStep(
                Operator(
                    "pr:push",
                    "all",
                    EdgePush(
                        target=contribution,
                        op=SUM,
                        source=rank,
                        charge_per_source=2,
                        transform=lambda values, nodes: (
                            damping * values / degrees[nodes]
                        ),
                        # Async eligibility: delta-PageRank mass propagation.
                        # Each node holds a residual of un-pushed mass
                        # (initially the teleport share); processing folds it
                        # into the rank and pushes transform(residual, node)
                        # along the out-edges, with dangling mass pooled and
                        # flushed uniformly - the same fixed point as the
                        # power iteration, reached highest-residual-first.
                        residual=ResidualDecl(
                            mode="accumulate",
                            tolerance=tolerance,
                            value=rank,
                            dangling="uniform",
                            dangling_scale=damping,
                            init_value=lambda nodes: np.zeros(nodes.size),
                            init_residual=lambda nodes: np.full(
                                nodes.size, base
                            ),
                        ),
                    ),
                )
            ),
            SyncStep(contribution, "reduce"),
            HostStep("pr:dangling", redistribute_dangling),
            OperatorStep(
                Operator(
                    "pr:rebuild",
                    "masters",
                    NodeUpdate(
                        target=rank,
                        op=OVERWRITE,
                        value=lambda nodes: (
                            state["uniform"] + state["contributions"][nodes]
                        ),
                        charge_per_node=2,
                        read_names=("pr_contrib",),
                    ),
                )
            ),
            SyncStep(rank, "reduce"),
            SyncStep(rank, "broadcast"),
            HostStep("pr:delta", update_delta),
        ],
        converged=lambda: state["delta"] < tolerance,
        maps=(rank, contribution),
        max_rounds=max_rounds,
        # PR historically attributes all loop phases to round 0 (no
        # advance_round); keep that, while still being recoverable.
        advance_rounds=False,
        raise_on_max_rounds=False,
        loop_label="pagerank",
        extra_snapshot=lambda: dict(state),
        extra_restore=restore_state,
    )
    rounds = executor.run(plan)
    rank.unpin_mirrors()
    if rounds:
        values = rank.snapshot()
    else:
        values = {node: value for node, value in enumerate(state["previous"].tolist())}
    return AlgorithmResult(
        name="PR",
        values=values,
        rounds=rounds,
        stats={"delta": state["delta"], "mass": sum(values.values())},
    )
