"""2-approximate minimum vertex cover by distributed maximal matching.

The paper's introduction lists vertex covers among the problems needing
richer-than-adjacent operators in general; the classic 2-approximation -
take both endpoints of every edge of a *maximal matching* - decomposes
into an adjacent-vertex program with one two-hop (trans-style but
adjacent-key) check:

round:
  1. every unmatched node *picks* its highest-priority unmatched neighbor
     (deterministic hash priority) and publishes the pick on itself;
  2. a node whose pick picked it back is matched (mutual proposal) - the
     check reads ``pick(pick(n))``, where ``pick(n)`` is a neighbor, so
     the key stays adjacent and pinned mirrors serve it;
  3. matched nodes enter the cover and drop out.

Every round matches at least one edge in any neighborhood that still has
unmatched edges (the globally highest-priority unmatched node's pick is
mutual), so the loop terminates with a maximal matching; its endpoint set
is a vertex cover within 2x of optimal.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import OVERWRITE, AlgorithmResult, resolve_executor
from repro.algorithms.mis import _hash_priority
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MAX
from repro.core.variants import RuntimeVariant
from repro.exec import Executor, Operator, OperatorStep, Plan, ScalarKernel, SyncStep
from repro.partition.base import PartitionedGraph

UNMATCHED = 0
MATCHED = 1
NO_PICK = -1


def vertex_cover_plan(
    pgraph: PartitionedGraph,
    state: NodePropMap,
    priority: NodePropMap,
    pick: NodePropMap,
) -> Plan:
    """One propose/match round as an operator plan."""

    def propose(ctx) -> None:
        if state.read_local(ctx.host, ctx.local) != UNMATCHED:
            return
        best_neighbor = NO_PICK
        best_priority = None
        for edge in ctx.edges():
            dst_local = ctx.edge_dst_local(edge)
            if dst_local == ctx.local:
                continue
            if state.read_local(ctx.host, dst_local) != UNMATCHED:
                continue
            neighbor_priority = priority.read_local(ctx.host, dst_local)
            if best_priority is None or neighbor_priority > best_priority:
                best_priority = neighbor_priority
                best_neighbor = ctx.edge_dst(edge)
        # single writer per key: a node publishes its own pick
        pick.reduce(ctx.host, ctx.thread, ctx.node, best_neighbor, OVERWRITE)

    def match(ctx) -> None:
        if state.read_local(ctx.host, ctx.local) != UNMATCHED:
            return
        my_pick = pick.read_local(ctx.host, ctx.local)
        if my_pick == NO_PICK:
            return
        # pick(n) is a neighbor, so its pick is a pinned-mirror read
        picked_back = pick.read(ctx.host, my_pick)
        if picked_back == ctx.node:
            state.reduce(ctx.host, ctx.thread, ctx.node, MATCHED, MAX)

    return Plan(
        name="vertex_cover",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "vc:propose",
                    "masters",
                    ScalarKernel(
                        propose,
                        read_names=(state.name, priority.name),
                        write_names=((pick.name, OVERWRITE.name),),
                    ),
                )
            ),
            SyncStep(pick, "reduce"),
            SyncStep(pick, "broadcast"),
            OperatorStep(
                Operator(
                    "vc:match",
                    "masters",
                    ScalarKernel(
                        match,
                        read_names=(state.name, pick.name),
                        write_names=((state.name, MAX.name),),
                    ),
                )
            ),
            SyncStep(state, "reduce"),
            SyncStep(state, "broadcast"),
        ],
        quiesce=(state,),
    )


def vertex_cover(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run matching-based vertex cover; values are True for covered nodes.

    Requires an outgoing edge-cut (each node picks among *all* its
    neighbors, so its full edge list must sit at its master, as with LV).
    """
    executor = resolve_executor(cluster, executor)
    if cluster.num_hosts > 1 and pgraph.policy != "oec":
        raise ValueError(
            "vertex_cover picks among all neighbors at the master: "
            "partition with the outgoing edge-cut ('oec')"
        )
    priority = NodePropMap(
        cluster, pgraph, "vc_priority", variant=variant, value_nbytes=16
    )
    executor.init_map(
        priority, elementwise=lambda node: (_hash_priority(node), node)
    )
    state = NodePropMap(cluster, pgraph, "vc_state", variant=variant)
    executor.init_map(
        state, lambda nodes: np.full(nodes.size, UNMATCHED, dtype=np.int64)
    )
    pick = NodePropMap(cluster, pgraph, "vc_pick", variant=variant)
    executor.init_map(
        pick, lambda nodes: np.full(nodes.size, NO_PICK, dtype=np.int64)
    )
    for prop in (priority, state, pick):
        prop.pin_mirrors(invariant="none")

    rounds = executor.run(vertex_cover_plan(pgraph, state, priority, pick))
    for prop in (priority, state, pick):
        prop.unpin_mirrors()
    matched = state.snapshot()
    values = {node: matched[node] == MATCHED for node in range(pgraph.num_nodes)}
    return AlgorithmResult(
        name="VERTEX-COVER",
        values=values,
        rounds=rounds,
        stats={"cover_size": float(sum(values.values()))},
    )
