"""2-approximate minimum vertex cover by distributed maximal matching.

The paper's introduction lists vertex covers among the problems needing
richer-than-adjacent operators in general; the classic 2-approximation -
take both endpoints of every edge of a *maximal matching* - decomposes
into an adjacent-vertex program with one two-hop (trans-style but
adjacent-key) check:

round:
  1. every unmatched node *picks* its highest-priority unmatched neighbor
     (deterministic hash priority) and publishes the pick on itself;
  2. a node whose pick picked it back is matched (mutual proposal) - the
     check reads ``pick(pick(n))``, where ``pick(n)`` is a neighbor, so
     the key stays adjacent and pinned mirrors serve it;
  3. matched nodes enter the cover and drop out.

Every round matches at least one edge in any neighborhood that still has
unmatched edges (the globally highest-priority unmatched node's pick is
mutual), so the loop terminates with a maximal matching; its endpoint set
is a vertex cover within 2x of optimal.
"""

from __future__ import annotations

from repro.algorithms.common import OVERWRITE, AlgorithmResult
from repro.algorithms.mis import _hash_priority
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MAX
from repro.core.variants import RuntimeVariant
from repro.partition.base import PartitionedGraph
from repro.runtime.engine import kimbap_while, par_for

UNMATCHED = 0
MATCHED = 1
NO_PICK = -1


def vertex_cover(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
) -> AlgorithmResult:
    """Run matching-based vertex cover; values are True for covered nodes.

    Requires an outgoing edge-cut (each node picks among *all* its
    neighbors, so its full edge list must sit at its master, as with LV).
    """
    if cluster.num_hosts > 1 and pgraph.policy != "oec":
        raise ValueError(
            "vertex_cover picks among all neighbors at the master: "
            "partition with the outgoing edge-cut ('oec')"
        )
    priority = NodePropMap(
        cluster, pgraph, "vc_priority", variant=variant, value_nbytes=16
    )
    priority.set_initial(lambda node: (_hash_priority(node), node))
    state = NodePropMap(cluster, pgraph, "vc_state", variant=variant)
    state.set_initial(lambda node: UNMATCHED)
    pick = NodePropMap(cluster, pgraph, "vc_pick", variant=variant)
    pick.set_initial(lambda node: NO_PICK)
    for prop in (priority, state, pick):
        prop.pin_mirrors(invariant="none")

    def round_body() -> None:
        def propose(ctx) -> None:
            if state.read_local(ctx.host, ctx.local) != UNMATCHED:
                return
            best_neighbor = NO_PICK
            best_priority = None
            for edge in ctx.edges():
                dst_local = ctx.edge_dst_local(edge)
                if dst_local == ctx.local:
                    continue
                if state.read_local(ctx.host, dst_local) != UNMATCHED:
                    continue
                neighbor_priority = priority.read_local(ctx.host, dst_local)
                if best_priority is None or neighbor_priority > best_priority:
                    best_priority = neighbor_priority
                    best_neighbor = ctx.edge_dst(edge)
            # single writer per key: a node publishes its own pick
            pick.reduce(ctx.host, ctx.thread, ctx.node, best_neighbor, OVERWRITE)

        par_for(cluster, pgraph, "masters", propose, label="vc:propose")
        pick.reduce_sync()
        pick.broadcast_sync()

        def match(ctx) -> None:
            if state.read_local(ctx.host, ctx.local) != UNMATCHED:
                return
            my_pick = pick.read_local(ctx.host, ctx.local)
            if my_pick == NO_PICK:
                return
            # pick(n) is a neighbor, so its pick is a pinned-mirror read
            picked_back = pick.read(ctx.host, my_pick)
            if picked_back == ctx.node:
                state.reduce(ctx.host, ctx.thread, ctx.node, MATCHED, MAX)

        par_for(cluster, pgraph, "masters", match, label="vc:match")
        state.reduce_sync()
        state.broadcast_sync()

    rounds = kimbap_while(state, round_body)
    for prop in (priority, state, pick):
        prop.unpin_mirrors()
    matched = state.snapshot()
    values = {node: matched[node] == MATCHED for node in range(pgraph.num_nodes)}
    return AlgorithmResult(
        name="VERTEX-COVER",
        values=values,
        rounds=rounds,
        stats={"cover_size": float(sum(values.values()))},
    )
