"""k-core decomposition by distributed H-index iteration (adjacent-vertex).

An extension application beyond the paper's seven (its introduction
motivates clustering-style problems as exactly this kind of workload):
core numbers via the Montresor-De Pellegrini-Miorandi scheme. Every
node's estimate starts at its degree; each round it lowers the estimate to
the H-index of its neighbors' estimates (the largest h such that at least
h neighbors have estimate >= h). The sequence is monotone non-increasing
and converges to the exact core numbers.

The H-index of a node's *full* neighbor multiset does not decompose over
partial views, so the operator must see all of a node's out-edges at its
master: the algorithm requires an outgoing edge-cut (like LV/LD in the
paper, which are also run on edge-cuts). All reads are of the active node
and its neighbors - adjacent-vertex, mirrors pinned, no request phases.
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmResult, resolve_executor
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.exec import Executor, Operator, OperatorStep, Plan, ScalarKernel, SyncStep
from repro.partition.base import PartitionedGraph


def h_index(values: list[int]) -> int:
    """Largest h with at least h entries >= h."""
    best = 0
    for index, value in enumerate(sorted(values, reverse=True), start=1):
        if value >= index:
            best = index
        else:
            break
    return best


def k_core_plan(pgraph: PartitionedGraph, estimate: NodePropMap) -> Plan:
    """One H-index lowering round as an operator plan."""

    def operator(ctx) -> None:
        current = estimate.read_local(ctx.host, ctx.local)
        if current == 0:
            return
        neighbor_estimates = []
        for edge in ctx.edges():
            dst_local = ctx.edge_dst_local(edge)
            if dst_local == ctx.local:
                continue  # self-loops never support a core
            neighbor_estimates.append(estimate.read_local(ctx.host, dst_local))
        bound = h_index(neighbor_estimates)
        ctx.charge(len(neighbor_estimates))
        if bound < current:
            estimate.reduce(ctx.host, ctx.thread, ctx.node, bound, MIN)

    return Plan(
        name="k_core",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "core",
                    "masters",
                    ScalarKernel(
                        operator,
                        read_names=(estimate.name,),
                        write_names=((estimate.name, MIN.name),),
                    ),
                )
            ),
            SyncStep(estimate, "reduce"),
            SyncStep(estimate, "broadcast"),
        ],
        quiesce=(estimate,),
    )


def k_core(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Compute core numbers; values are exact k-core indices per node."""
    executor = resolve_executor(cluster, executor)
    if cluster.num_hosts > 1 and pgraph.policy != "oec":
        raise ValueError(
            "k-core's H-index needs every node's full edge list at its "
            "master: partition with the outgoing edge-cut ('oec')"
        )
    estimate = NodePropMap(cluster, pgraph, "core_estimate", variant=variant)
    executor.init_map(estimate, elementwise=lambda node: pgraph.graph.degree(node))
    estimate.pin_mirrors(invariant="none")
    rounds = executor.run(k_core_plan(pgraph, estimate))
    estimate.unpin_mirrors()
    values = {k: int(v) for k, v in estimate.snapshot().items()}
    return AlgorithmResult(
        name="K-CORE",
        values=values,
        rounds=rounds,
        stats={"max_core": max(values.values(), default=0)},
    )
