"""LD: deterministic distributed Leiden community detection [79].

The paper's LD is the first distributed Leiden implementation; this module
reproduces its structure:

1. **local moving** - same modularity-gain moving as Louvain
   (:func:`repro.algorithms.louvain.local_moving`);
2. **refinement** - each cluster is split into subclusters: a constrained
   local-moving pass merges nodes only within their cluster (using its own
   tot/size maps), then an intra-cluster label-propagation + shortcut pass
   splits every refined group into connected pieces. This enforces
   Leiden's headline guarantee: every community is internally connected;
3. **aggregation** - the graph is coarsened over *subclusters*, but the
   next level's local moving starts from the *cluster* partition, so
   loosely connected subclusters can move to neighboring clusters as
   whole units - exactly the paper's description of LD.

This uses five persistent node-property maps per level (cluster, cluster
tot, cluster size, refinement cluster/tot/size share the same three map
shapes, plus the subcluster map), matching the paper's "five node property
maps for cluster and subcluster information".
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import (
    AlgorithmResult,
    coarsen,
    modularity,
    resolve_executor,
)
from repro.algorithms.louvain import local_moving
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.exec import (
    DstCmpFilter,
    EdgePush,
    Executor,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    SyncStep,
)
from repro.partition.base import PartitionedGraph
from repro.partition.policies import partition


def connected_split_plan(
    pgraph: PartitionedGraph, sub: NodePropMap, group_of: np.ndarray, name: str
) -> Plan:
    """One intra-group LP + shortcut round as an operator plan."""

    def request(ctx) -> None:
        own_label = sub.read_local(ctx.host, ctx.local)
        sub.request(ctx.host, own_label)

    def shortcut(ctx) -> None:
        own_label = sub.read_local(ctx.host, ctx.local)
        label_of_label = sub.read(ctx.host, own_label)
        if own_label != label_of_label:
            sub.reduce(ctx.host, ctx.thread, ctx.node, label_of_label, MIN)

    return Plan(
        name=name,
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    f"{name}:prop",
                    "all",
                    EdgePush(
                        target=sub,
                        op=MIN,
                        source=sub,
                        skip_zero_degree=False,
                        charge_per_edge=1,
                        # Declarative: only intra-group edges propagate
                        # (serializes; compiles to a mask under codegen).
                        edge_filter=DstCmpFilter("eq", group_of),
                    ),
                )
            ),
            SyncStep(sub, "reduce"),
            SyncStep(sub, "broadcast"),
            OperatorStep(
                Operator(
                    f"{name}:req",
                    "masters",
                    ScalarKernel(request, read_names=(sub.name,)),
                    kind=PhaseKind.REQUEST_COMPUTE,
                )
            ),
            SyncStep(sub, "request"),
            OperatorStep(
                Operator(
                    f"{name}:short",
                    "masters",
                    ScalarKernel(
                        shortcut,
                        read_names=(sub.name,),
                        write_names=((sub.name, MIN.name),),
                    ),
                )
            ),
            SyncStep(sub, "reduce"),
            SyncStep(sub, "broadcast"),
        ],
        quiesce=(sub,),
        loop_label=name,
    )


def connected_split(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant,
    group_of: np.ndarray,
    name: str,
    executor: Executor | None = None,
) -> tuple[np.ndarray, int]:
    """Split each group into connected subgroups (min-label LP + shortcut).

    Only edges internal to a group propagate labels, so the result labels
    connected components of each group's induced subgraph. The shortcut
    step is the same trans-vertex pointer jumping as CC-SCLP.
    """
    executor = resolve_executor(cluster, executor)
    sub = NodePropMap(cluster, pgraph, name, variant=variant)
    executor.init_map(sub, lambda nodes: nodes.copy())
    sub.pin_mirrors(invariant="none")
    rounds = executor.run(connected_split_plan(pgraph, sub, group_of, name))
    sub.unpin_mirrors()
    snapshot = sub.snapshot()
    labels = np.asarray(
        [snapshot[node] for node in range(pgraph.graph.num_nodes)], dtype=np.int64
    )
    return labels, rounds


def leiden(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    gamma: float = 1.0,
    max_rounds_per_level: int = 40,
    max_levels: int = 12,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run deterministic Leiden; values are community ids per original node.

    Communities are guaranteed internally connected (Leiden's property that
    Louvain lacks) because aggregation always happens over connected
    subclusters.
    """
    executor = resolve_executor(cluster, executor)
    level_graph = pgraph.graph
    level_pgraph = pgraph
    node_to_coarse = np.arange(level_graph.num_nodes, dtype=np.int64)
    initial_labels: np.ndarray | None = None
    communities_of_original = node_to_coarse.copy()
    total_rounds = 0
    levels = 0
    while levels < max_levels:
        labels, moving_rounds = local_moving(
            cluster,
            level_pgraph,
            variant,
            gamma,
            max_rounds_per_level,
            name=f"ld{levels}m",
            initial_labels=initial_labels,
            executor=executor,
        )
        total_rounds += moving_rounds
        levels += 1
        seeds = (
            initial_labels
            if initial_labels is not None
            else np.arange(level_graph.num_nodes)
        )
        moved = bool(np.any(labels != seeds))
        communities_of_original = labels[node_to_coarse]

        # Refinement: constrained moving inside clusters, then split into
        # connected pieces so aggregated communities stay connected.
        refined, refine_rounds = local_moving(
            cluster,
            level_pgraph,
            variant,
            gamma,
            max_rounds_per_level,
            name=f"ld{levels}r",
            constraint=labels,
            executor=executor,
        )
        total_rounds += refine_rounds
        sub_labels, split_rounds = connected_split(
            cluster, level_pgraph, variant, refined, name=f"ld{levels}s",
            executor=executor,
        )
        total_rounds += split_rounds

        coarse_graph, coarse_of = coarsen(level_graph, sub_labels, cluster, level_pgraph)
        if not moved and coarse_graph.num_nodes == level_graph.num_nodes:
            break
        # Parent cluster of every coarse node (all members share it).
        parent_cluster = np.zeros(coarse_graph.num_nodes, dtype=np.int64)
        parent_cluster[coarse_of] = labels
        # Next level starts from the *cluster* partition: pick one coarse
        # node per cluster as the representative label.
        representative: dict[int, int] = {}
        for coarse_id, parent in enumerate(parent_cluster.tolist()):
            representative.setdefault(parent, coarse_id)
        initial_labels = np.asarray(
            [representative[parent] for parent in parent_cluster.tolist()],
            dtype=np.int64,
        )
        node_to_coarse = coarse_of[node_to_coarse]
        if coarse_graph.num_nodes == level_graph.num_nodes:
            # No aggregation progress; one more moving pass cannot change
            # anything new, so stop.
            break
        level_graph = coarse_graph
        level_pgraph = partition(coarse_graph, cluster.num_hosts, pgraph.policy)

    # Guarantee the headline Leiden property on the *output*: if the last
    # moving pass left any community disconnected on the original graph,
    # split it into its connected pieces (this never lowers modularity).
    final_labels, cleanup_rounds = connected_split(
        cluster, pgraph, variant, communities_of_original, name="ld_final",
        executor=executor,
    )
    total_rounds += cleanup_rounds
    communities = {
        node: int(final_labels[node]) for node in range(pgraph.graph.num_nodes)
    }
    return AlgorithmResult(
        name="LD",
        values=communities,
        rounds=total_rounds,
        stats={
            "modularity": modularity(pgraph.graph, final_labels, gamma),
            "levels": levels,
            "num_communities": len(set(communities.values())),
        },
    )
