"""LV: deterministic distributed Louvain community detection [13].

Two alternating phases, as in the paper's Section 6.1:

* **clustering refinement** (local moving) - every node scores the
  modularity gain of joining each neighbor's cluster. Cluster totals are
  stored on the cluster's representative node, so reading ``tot(cluster_of
  (neighbor))`` is a trans-vertex access: the request phase asks for the
  totals of dynamically computed node ids, which is exactly what
  adjacent-vertex frameworks cannot express.
* **graph coarsening** - clusters collapse into nodes and the process
  repeats on the coarse graph until modularity stops improving.

Determinism and convergence follow Vite/Grappolo's minimum-label
heuristics: ties go to the smaller cluster id, and a singleton node only
moves into another singleton's cluster when that cluster has the smaller
id (otherwise synchronous rounds make the pair swap forever).

Three node-property maps per level: cluster assignment, cluster total
strength, and cluster size.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import (
    OVERWRITE,
    AlgorithmResult,
    coarsen,
    modularity,
    resolve_executor,
    weighted_degrees,
)
from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.propmap import NodePropMap
from repro.core.reducers import ReduceOp
from repro.core.variants import RuntimeVariant
from repro.exec import (
    Executor,
    HostStep,
    Operator,
    OperatorStep,
    Plan,
    ScalarKernel,
    SyncStep,
)
from repro.partition.base import PartitionedGraph
from repro.partition.policies import partition


def local_moving(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant,
    gamma: float,
    max_rounds: int,
    name: str,
    initial_labels: np.ndarray | None = None,
    constraint: np.ndarray | None = None,
    min_moves_fraction: float = 0.01,
    executor: Executor | None = None,
) -> tuple[np.ndarray, int]:
    """The BSP local-moving phase shared by Louvain and Leiden.

    Returns the final node -> cluster labels and the number of BSP rounds.
    ``initial_labels`` seeds the partition (Leiden aggregates start from
    their parent clusters); ``constraint`` restricts moves to target
    clusters whose constraint matches the node's (Leiden's refinement).
    ``min_moves_fraction`` is the standard Louvain iteration cutoff (used
    by Vite/Grappolo too): stop refining once fewer than that fraction of
    nodes moved in a round - the long tail of single-node rounds costs
    full graph scans for negligible modularity.
    """
    executor = resolve_executor(cluster, executor)
    graph = pgraph.graph
    strengths = weighted_degrees(graph)
    two_m = float(strengths.sum())
    if two_m == 0:
        labels = initial_labels if initial_labels is not None else np.arange(graph.num_nodes)
        return labels.copy(), 0
    if initial_labels is None:
        initial_labels = np.arange(graph.num_nodes, dtype=np.int64)
    tot_init = np.zeros(graph.num_nodes)
    np.add.at(tot_init, initial_labels, strengths)
    size_init = np.bincount(initial_labels, minlength=graph.num_nodes)

    cluster_map = NodePropMap(cluster, pgraph, f"{name}_cluster", variant=variant)
    # One map holds the cluster's (total strength, size) pair, stored on
    # the cluster's representative node: one request wave and one
    # reduce-sync per round instead of two.
    info_map = NodePropMap(
        cluster, pgraph, f"{name}_info", variant=variant, value_nbytes=16
    )
    pair_sum = ReduceOp("pair_sum", lambda a, b: (a[0] + b[0], a[1] + b[1]))
    executor.init_map(
        cluster_map, elementwise=lambda node: int(initial_labels[node])
    )
    executor.init_map(
        info_map,
        elementwise=lambda node: (float(tot_init[node]), int(size_init[node])),
    )
    cluster_map.pin_mirrors(invariant="none")

    min_moves = max(int(min_moves_fraction * graph.num_nodes), 1)
    # Loop-private host state in one dict so crash recovery can snapshot
    # and restore it alongside the maps. Stall detection: synchronous
    # moving on stale totals can cycle through a small set of
    # configurations; the objective (modularity) then stops improving,
    # which is the principled signal to stop the level.
    state: dict = {
        "round": 0,
        "parity": 0,
        "moves": 0,
        "previous_moves": graph.num_nodes,
        "best_quality": -np.inf,
        "stalled": 0,
    }

    def start_round() -> None:
        # Parity gating: only half the nodes may move each round. The
        # standard synchronous-Louvain guard (used with coloring in
        # distributed implementations) against groups of nodes swapping
        # clusters in lockstep forever on stale totals.
        state["parity"] = state["round"] % 2
        state["round"] += 1
        state["moves"] = 0

    def request_totals(ctx) -> None:
        own_cluster = cluster_map.read_local(ctx.host, ctx.local)
        info_map.request(ctx.host, own_cluster)
        for edge in ctx.edges():
            neighbor_cluster = cluster_map.read_local(
                ctx.host, ctx.edge_dst_local(edge)
            )
            info_map.request(ctx.host, neighbor_cluster)

    def move(ctx) -> None:
        node = ctx.node
        if (node ^ state["parity"]) & 1:
            return
        own_cluster = cluster_map.read_local(ctx.host, ctx.local)
        strength = float(strengths[node])
        ctx.charge(2)
        weight_to: dict[int, float] = {}
        for edge in ctx.edges():
            dst_local = ctx.edge_dst_local(edge)
            dst = int(ctx.part.local_to_global[dst_local])
            if dst == node:
                continue  # self-loop weight is choice-invariant
            neighbor_cluster = cluster_map.read_local(ctx.host, dst_local)
            weight_to[neighbor_cluster] = (
                weight_to.get(neighbor_cluster, 0.0) + ctx.edge_weight(edge)
            )
        own_tot, own_size = info_map.read(ctx.host, own_cluster)
        own_tot -= strength
        stay_score = (
            weight_to.get(own_cluster, 0.0) - gamma * own_tot * strength / two_m
        )
        best_cluster = own_cluster
        best_score = stay_score
        for candidate, weight in sorted(weight_to.items()):
            if candidate == own_cluster:
                continue
            if constraint is not None and constraint[candidate] != constraint[node]:
                continue
            ctx.charge(2)
            candidate_tot, _ = info_map.read(ctx.host, candidate)
            score = weight - gamma * candidate_tot * strength / two_m
            if score > best_score or (
                score == best_score and candidate < best_cluster
            ):
                best_cluster = candidate
                best_score = score
        if best_cluster == own_cluster:
            return
        if own_size == 1:
            _, target_size = info_map.read(ctx.host, best_cluster)
            if target_size == 1 and best_cluster > own_cluster:
                # minimum-label heuristic: stops singleton pairs from
                # swapping clusters forever under synchronous rounds
                return
        state["moves"] += 1
        cluster_map.reduce(ctx.host, ctx.thread, node, best_cluster, OVERWRITE)
        info_map.reduce(ctx.host, ctx.thread, own_cluster, (-strength, -1), pair_sum)
        info_map.reduce(ctx.host, ctx.thread, best_cluster, (strength, 1), pair_sum)

    def converged() -> bool:
        # Runs only when the round was not quiescent (the executor checks
        # quiescence first), mirroring the legacy break order.
        if state["moves"] + state["previous_moves"] < min_moves:
            # The iteration cutoff every production Louvain uses (two
            # consecutive rounds, since parity gating halves each round);
            # the move count rides the same allreduce as the IsUpdated vote.
            return True
        state["previous_moves"] = state["moves"]
        snapshot = cluster_map.snapshot()
        current = np.asarray(
            [snapshot[node] for node in range(graph.num_nodes)], dtype=np.int64
        )
        quality = modularity(graph, current, gamma)
        if quality > state["best_quality"] + 1e-12:
            state["best_quality"] = quality
            state["stalled"] = 0
        else:
            state["stalled"] += 1
            if state["stalled"] >= 4:
                return True
        return False

    def restore_state(saved) -> None:
        state.clear()
        state.update(saved)

    plan = Plan(
        name=name,
        pgraph=pgraph,
        steps=[
            HostStep(f"{name}:parity", start_round),
            OperatorStep(
                Operator(
                    f"{name}:req",
                    "masters",
                    ScalarKernel(
                        request_totals,
                        read_names=(cluster_map.name, info_map.name),
                    ),
                    kind=PhaseKind.REQUEST_COMPUTE,
                )
            ),
            SyncStep(info_map, "request"),
            OperatorStep(
                Operator(
                    f"{name}:move",
                    "masters",
                    ScalarKernel(
                        move,
                        read_names=(cluster_map.name, info_map.name),
                        write_names=(
                            (cluster_map.name, OVERWRITE.name),
                            (info_map.name, pair_sum.name),
                        ),
                        ops=(pair_sum,),
                        # the body bumps the host-global move counter the
                        # convergence check reads: not per-host
                        # addressable, so this phase runs replicated
                        # under parallel execution
                        host_local=False,
                    ),
                )
            ),
            SyncStep(cluster_map, "reduce"),
            SyncStep(cluster_map, "broadcast"),
            SyncStep(info_map, "reduce"),
        ],
        quiesce=(cluster_map,),
        converged=converged,
        maps=(cluster_map, info_map),
        max_rounds=max_rounds,
        raise_on_max_rounds=False,
        loop_label=name,
        extra_snapshot=lambda: dict(state),
        extra_restore=restore_state,
    )
    rounds = executor.run(plan)
    cluster_map.unpin_mirrors()
    snapshot = cluster_map.snapshot()
    labels = np.asarray(
        [snapshot[node] for node in range(graph.num_nodes)], dtype=np.int64
    )
    return labels, rounds


def louvain(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    gamma: float = 1.0,
    min_gain: float = 1e-6,
    max_rounds_per_level: int = 40,
    max_levels: int = 12,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run deterministic Louvain; values are community ids per original node."""
    executor = resolve_executor(cluster, executor)
    level_graph = pgraph.graph
    level_pgraph = pgraph
    node_to_coarse = np.arange(level_graph.num_nodes, dtype=np.int64)
    total_rounds = 0
    best_modularity = modularity(level_graph, np.arange(level_graph.num_nodes), gamma)
    levels = 0
    while levels < max_levels:
        labels, rounds = local_moving(
            cluster,
            level_pgraph,
            variant,
            gamma,
            max_rounds_per_level,
            name=f"lv{levels}",
            executor=executor,
        )
        total_rounds += rounds
        levels += 1
        level_modularity = modularity(level_graph, labels, gamma)
        moved = bool(np.any(labels != np.arange(level_graph.num_nodes)))
        if not moved or level_modularity < best_modularity + min_gain:
            best_modularity = max(best_modularity, level_modularity)
            node_to_coarse = labels[node_to_coarse]
            break
        best_modularity = level_modularity
        coarse_graph, coarse_of = coarsen(level_graph, labels, cluster, level_pgraph)
        # coarse_of[v] is the compacted cluster of level node v, so the
        # original -> coarse mapping composes directly (the cluster's
        # representative node may itself have moved elsewhere, so going
        # through `labels` again here would be wrong).
        node_to_coarse = coarse_of[node_to_coarse]
        if coarse_graph.num_nodes == level_graph.num_nodes:
            break
        level_graph = coarse_graph
        level_pgraph = partition(coarse_graph, cluster.num_hosts, pgraph.policy)
    communities = {
        node: int(node_to_coarse[node]) for node in range(pgraph.graph.num_nodes)
    }
    final_labels = np.asarray(
        [communities[node] for node in range(pgraph.graph.num_nodes)], dtype=np.int64
    )
    return AlgorithmResult(
        name="LV",
        values=communities,
        rounds=total_rounds,
        stats={
            "modularity": modularity(pgraph.graph, final_labels, gamma),
            "levels": levels,
            "num_communities": len(set(communities.values())),
        },
    )
