"""CC-SV: Shiloach-Vishkin connected components (trans-vertex).

The running example of the paper (Figures 1, 4, 8). Alternates:

* **hook** - for each edge ``n -> m``, if ``parent(n) > parent(m)``,
  min-reduce ``parent(m)`` onto ``parent(parent(n))``. The reduction
  target ``parent(n)`` is a dynamically computed node id: this cannot be
  expressed in adjacent-vertex frameworks.
* **shortcut** - pointer jumping: ``parent(n) <- parent(parent(n))``.

Converges in O(log n) pointer-jumping rounds, making it much faster than
CC-LP on high-diameter graphs.
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmResult, resolve_executor, shortcut_until_flat
from repro.cluster.cluster import Cluster
from repro.core.propmap import NodePropMap
from repro.core.reducers import MIN
from repro.core.variants import RuntimeVariant
from repro.exec import Executor, Operator, OperatorStep, Plan, ScalarKernel, SyncStep
from repro.partition.base import PartitionedGraph
from repro.runtime.bool_reducer import BoolReducer


def cc_sv_hook_plan(
    pgraph: PartitionedGraph, parent: NodePropMap, work_done: BoolReducer
) -> Plan:
    """The hook loop (run until quiescent between shortcut phases)."""

    def operator(ctx) -> None:
        src_parent = parent.read_local(ctx.host, ctx.local)
        for edge in ctx.edges():
            dst_parent = parent.read_local(ctx.host, ctx.edge_dst_local(edge))
            if src_parent > dst_parent:
                work_done.reduce(ctx.host, True)
                parent.reduce(ctx.host, ctx.thread, src_parent, dst_parent, MIN)

    return Plan(
        name="cc_sv:hook",
        pgraph=pgraph,
        steps=[
            OperatorStep(
                Operator(
                    "hook",
                    "all",
                    ScalarKernel(
                        operator,
                        read_names=(parent.name,),
                        write_names=((parent.name, MIN.name),),
                        # the work-done vote's host flags are compute-phase
                        # effects too (host-shard execution ships them)
                        extra_effects=(work_done,),
                    ),
                )
            ),
            SyncStep(parent, "reduce"),
            SyncStep(parent, "broadcast"),
        ],
        quiesce=(parent,),
    )


def cc_sv(
    cluster: Cluster,
    pgraph: PartitionedGraph,
    variant: RuntimeVariant = RuntimeVariant.KIMBAP,
    executor: Executor | None = None,
) -> AlgorithmResult:
    """Run Shiloach-Vishkin; values are the minimum node id per component."""
    executor = resolve_executor(cluster, executor)
    parent = NodePropMap(cluster, pgraph, "sv_parent", variant=variant)
    executor.init_map(parent, lambda nodes: nodes.copy())
    work_done = BoolReducer(cluster, "sv_work")
    hook_plan = cc_sv_hook_plan(pgraph, parent, work_done)

    total_rounds = 0
    outer_rounds = 0
    while True:
        work_done.set_all(False)
        # Hook reads the active node and its neighbors only (writes go
        # anywhere), so the compiler pins mirrors and elides requests.
        parent.pin_mirrors(invariant="none")
        total_rounds += executor.run(hook_plan)
        work_done.sync()
        parent.unpin_mirrors()
        total_rounds += shortcut_until_flat(cluster, pgraph, parent, executor=executor)
        outer_rounds += 1
        if not work_done.read():
            break
    return AlgorithmResult(
        name="CC-SV",
        values=parent.snapshot(),
        rounds=total_rounds,
        stats={"outer_rounds": outer_rounds},
    )
