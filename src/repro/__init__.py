"""Kimbap reproduction: a node-property map system for distributed graph analytics.

This package reimplements the system described in "Kimbap: A Node-Property
Map System for Distributed Graph Analytics" (ASPLOS 2024) in Python, running
on a deterministic simulated cluster (see ``repro.cluster``) instead of an
MPI cluster. The public surface re-exports the pieces most users need:

* :class:`repro.graph.Graph` and the synthetic generators,
* the partitioning policies in :mod:`repro.partition`,
* :class:`repro.cluster.Cluster` and :class:`repro.cluster.CostModel`,
* :class:`repro.core.NodePropMap` (the paper's core contribution),
* the algorithms in :mod:`repro.algorithms`,
* the compiler entry point :func:`repro.compiler.compile_program`.
"""

from repro.graph import Graph, generators
from repro.cluster import Cluster, CostModel, ModeledTime
from repro.core import NodePropMap, RuntimeVariant
from repro.partition import partition
from repro.runtime import BoolReducer

__all__ = [
    "Graph",
    "generators",
    "Cluster",
    "CostModel",
    "ModeledTime",
    "NodePropMap",
    "RuntimeVariant",
    "partition",
    "BoolReducer",
]

__version__ = "0.1.0"
