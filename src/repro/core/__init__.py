"""The node-property map: the paper's core contribution.

A :class:`NodePropMap` stores node-id -> property pairs distributed across
the cluster, optimized for highly concurrent sparse reductions via three
domain-specific optimizations (Section 4.2):

* **GAR** - graph-partition-aware representation: masters in a dense
  vector, requested remote properties in sorted arrays (binary search).
* **CF** - conflict-free reductions via thread-local maps combined with a
  disjoint key-range dealing step.
* **SGR** - scatter-gather-reduce: one message per host pair per round
  carrying partial reductions to the owners.

:class:`RuntimeVariant` selects between the full map and the ablation
variants of Section 6.4 (MC / SGR-only / SGR+CF / SGR+CF+GAR).
"""

from repro.core.bitset import ConcurrentBitset
from repro.core.reducers import ReduceOp, MIN, MAX, SUM, LOGICAL_OR, PAIR_MIN, PAIR_MAX
from repro.core.variants import RuntimeVariant
from repro.core.propmap import NodePropMap

__all__ = [
    "ConcurrentBitset",
    "ReduceOp",
    "MIN",
    "MAX",
    "SUM",
    "LOGICAL_OR",
    "PAIR_MIN",
    "PAIR_MAX",
    "RuntimeVariant",
    "NodePropMap",
]
