"""Reduction strategies: how concurrent Reduce() calls are absorbed.

Three strategies, matching Section 4.2 and the Section 6.4 variants:

* :class:`ThreadLocalReduction` (CF) - every virtual thread owns a private
  map during reduce-compute; the combining step of reduce-sync deals
  disjoint key ranges to threads. Conflicts are impossible by construction.
* :class:`SharedMapReduction` - one concurrent map per host; all threads
  reduce into it with CAS. Concurrent same-key updates from distinct
  threads are counted as conflicts (priced heavily by the cost model:
  cache-line ping-pong plus retry). This is what throttles Pregel-style
  systems on power-law graphs.
* :class:`KvCasReduction` (MC) - reductions are get+CAS retry loops against
  the distributed key-value store, with per-attempt network messages.

Each strategy also exposes ``reduce_bulk`` for the vectorized execution
path. The contract is strict: a bulk call must produce the same folded
values, the same conflict counts, and the same counter totals as the
equivalent sequence of scalar ``reduce`` calls (``threads`` non-decreasing,
as the static dealing produces). Numeric batches stay folded as sorted
key/value arrays (thread-major composite keys for CF) until
``collect``/``collect_arrays``; anything that cannot be folded with a
ufunc falls back to the scalar per-item path.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.reducers import ReduceOp
from repro.kvstore.client import KvClient

KV_RETRY_CAP = 8


def _fold_batch(
    keys: np.ndarray, values: np.ndarray, op: ReduceOp
) -> tuple[np.ndarray, np.ndarray] | None:
    """Fold one batch into (sorted unique keys, per-key folded values).

    Bit-identical to applying ``op`` left-to-right per key: the first
    occurrence assigns, later occurrences fold via the op's unbuffered
    ``.at`` ufunc form (which applies duplicate indices sequentially).
    Returns None when the batch is not vectorizable (object values or an
    operator with no ufunc).
    """
    if values.dtype == object:
        return None
    if op.ufunc is None and op.name != "overwrite":
        return None
    uniq, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    if op.name == "overwrite":
        if uniq.size == keys.size:
            return uniq, values[first_idx]
        last = np.zeros(uniq.size, dtype=np.int64)
        np.maximum.at(last, inverse, np.arange(keys.size, dtype=np.int64))
        return uniq, values[last]
    acc = values[first_idx]
    if uniq.size != keys.size:
        rest = np.ones(keys.size, dtype=bool)
        rest[first_idx] = False
        op.ufunc.at(acc, inverse[rest], values[rest])
    return uniq, acc


class PreparedFold:
    """A precomputed composite-key fold plan for a *static* reduce batch.

    Plan-to-kernel codegen (``repro.exec.codegen``) reduces with the same
    ``(threads, keys)`` arrays every round - only the values change - so
    the expensive part of :func:`_fold_batch` (the ``np.unique`` sort and
    the first/duplicate decomposition of the composite keys) is a pure
    function of the batch shape and can be assembled once. Applying the
    plan replays exactly the fold ``_fold_batch`` would compute: same
    first-occurrence assignment, same ``ufunc.at`` duplicate application
    order, same sorted unique keys - bit-identical folded state.

    Holds the original ``threads``/``keys`` so a consumer can fall back to
    the generic :meth:`ThreadLocalReduction.reduce_bulk` whenever the fast
    path's preconditions (clean thread maps, ufunc-foldable op) fail at
    run time.
    """

    __slots__ = (
        "threads",
        "keys",
        "count",
        "span",
        "uniq",
        "first_idx",
        "rest",
        "inverse_rest",
        "last",
    )

    def __init__(self, threads: np.ndarray, keys: np.ndarray) -> None:
        def frozen(array: np.ndarray) -> np.ndarray:
            array.flags.writeable = False
            return array

        self.threads = threads
        self.keys = keys
        self.count = int(keys.size)
        self.span = int(keys.max()) + 1
        composite = threads * self.span + keys
        uniq, first_idx, inverse = np.unique(
            composite, return_index=True, return_inverse=True
        )
        inverse = inverse.reshape(-1)
        self.uniq = frozen(uniq)
        self.first_idx = frozen(first_idx)
        rest = np.ones(self.count, dtype=bool)
        rest[first_idx] = False
        self.rest = frozen(rest)
        self.inverse_rest = frozen(inverse[rest])
        # Last occurrence per key, for the overwrite fold.
        last = np.zeros(uniq.size, dtype=np.int64)
        np.maximum.at(last, inverse, np.arange(self.count, dtype=np.int64))
        self.last = frozen(last)

    def fold(self, values: np.ndarray, op: ReduceOp) -> np.ndarray:
        """The value-side of :func:`_fold_batch` under this plan.

        Deliberately replays ``_fold_batch``'s first-occurrence +
        ``ufunc.at`` decomposition rather than e.g. ``reduceat`` over a
        sorted copy: ``add.reduceat`` folds segments pairwise, which is
        not bit-identical to the sequential left-to-right application
        the scalar oracle produces.
        """
        if op.name == "overwrite":
            return values[self.last]
        acc = values[self.first_idx]
        if self.inverse_rest.size:
            op.ufunc.at(acc, self.inverse_rest, values[self.rest])
        return acc


class PreparedSubsetFold:
    """Composite-key fold plans for *subsets* of a static reduce batch.

    Frontier-aware kernels (``repro.exec.codegen.PreparedFrontierPush``)
    reduce with a per-round subset of a frozen ``(threads, keys)`` edge
    expansion - the active sources change, the expansion does not. The
    composite stable sort is a pure function of the full batch, so it is
    computed once here as a per-position *rank*; :meth:`fold` then
    replays :func:`_fold_batch`'s exact first-occurrence + ``ufunc.at``
    decomposition for any ascending index subset by sorting just the
    subset's O(k) precomputed ranks - no per-round composite-key build,
    no O(total) passes.

    The composite span is the *full* batch's ``max(keys) + 1`` rather than
    the subset's: composite ordering and the ``% span`` / ``// span``
    decompositions are identical for any span exceeding every subset key,
    so the folded batch state is observably interchangeable with what
    :meth:`ThreadLocalReduction.reduce_bulk` stores.
    """

    __slots__ = ("threads", "keys", "count", "span", "rank", "composite")

    def __init__(self, threads: np.ndarray, keys: np.ndarray) -> None:
        def frozen(array: np.ndarray) -> np.ndarray:
            array.flags.writeable = False
            return array

        self.threads = threads
        self.keys = keys
        self.count = int(keys.size)
        self.span = int(keys.max()) + 1
        composite = threads * self.span + keys
        # Stable order matches np.unique's mergesort-with-index exactly:
        # equal composites keep ascending batch position. The inverse
        # permutation (each position's rank in that order) is what rounds
        # sort by - ranks are distinct, so any sort reproduces the one
        # stable order.
        order = np.argsort(composite, kind="stable")
        rank = np.empty(order.size, dtype=np.int64)
        rank[order] = np.arange(order.size, dtype=np.int64)
        self.rank = frozen(rank)
        self.composite = frozen(composite)

    def fold(
        self, idx: np.ndarray, values: np.ndarray, op: ReduceOp
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Fold the subset at ascending batch positions ``idx`` (``values``
        aligned with ``idx``) into ``(span, uniq, folded)`` batch state.

        Per folded slot, duplicates apply in ascending batch position -
        the same sequence :func:`_fold_batch` feeds ``ufunc.at`` - so the
        folded values are bit-identical to the generic bulk path:
        subset positions with equal composites carry ranks in ascending
        batch order, and ``idx`` itself is ascending, so sorting the
        subset's ranks yields exactly the stable composite order of the
        subset with batch positions as the sort permutation.
        """
        pos_in_batch = np.argsort(self.rank[idx])
        comp = self.composite[idx[pos_in_batch]]
        starts = np.empty(comp.size, dtype=bool)
        starts[0] = True
        np.not_equal(comp[1:], comp[:-1], out=starts[1:])
        uniq = comp[starts]
        if op.name == "overwrite":
            ends = np.empty(comp.size, dtype=bool)
            ends[-1] = True
            ends[:-1] = starts[1:]
            return self.span, uniq, values[pos_in_batch[ends]]
        acc = values[pos_in_batch[starts]]
        rest = ~starts
        if rest.any():
            seg = np.cumsum(starts) - 1
            op.ufunc.at(acc, seg[rest], values[pos_in_batch[rest]])
        return self.span, uniq, acc


class ThreadLocalReduction:
    """Conflict-free (CF): one private map per virtual thread."""

    conflict_free = True

    def __init__(
        self, cluster: Cluster, host_id: int, serial_combine: bool = False
    ) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.serial_combine = serial_combine
        self.maps: list[dict[int, Any]] = [
            {} for _ in range(cluster.threads_per_host)
        ]
        # Bulk-path state: one whole batch folded on (thread, key)
        # composite keys - ``uniq`` ascending in thread-major order, so a
        # thread's segment is its sorted unique keys and its folded values.
        # Dict state and batch state never coexist; mixing scalar and bulk
        # reduces (or back-to-back bulk batches) spills the batch into the
        # per-thread dicts with values unchanged.
        self._batch: tuple[int, np.ndarray, np.ndarray] | None = None

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        counters = self.cluster.counters(self.host_id)
        counters.reduce_calls += 1
        if self._batch is not None:
            self._spill_batch()
        local_map = self.maps[thread]
        if key in local_map:
            local_map[key] = op(local_map[key], value)
        else:
            local_map[key] = value

    def reduce_bulk(
        self,
        threads: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        op: ReduceOp,
    ) -> None:
        """Batched reduce (``threads`` non-decreasing): same accounting and
        the same per-thread folded values as the scalar calls."""
        counters = self.cluster.counters(self.host_id)
        count = int(keys.size)
        counters.reduce_calls += count
        if count == 0:
            return
        values = np.asarray(values)
        if self._batch is not None:
            self._spill_batch()
        if (
            not any(self.maps)
            and values.dtype != object
            and (op.ufunc is not None or op.name == "overwrite")
        ):
            # All threads clean and the op folds with a ufunc: fold the
            # whole batch at once on (thread, key) composite keys - one
            # np.unique for the host. Bit-identical to per-thread folds:
            # composites sort as (thread, key), and first occurrences plus
            # the ``.at`` application order within a thread's segment match
            # the segment-local left-to-right fold exactly.
            span = int(keys.max()) + 1
            uniq, folded = _fold_batch(threads * span + keys, values, op)
            self._batch = (span, uniq, folded)
            return
        # Prior pending state or a non-vectorizable op: apply the exact
        # sequential scalar rule into the thread dicts.
        maps = self.maps
        for thread, key, value in zip(
            threads.tolist(), keys.tolist(), values.tolist()
        ):
            local_map = maps[thread]
            if key in local_map:
                local_map[key] = op(local_map[key], value)
            else:
                local_map[key] = value

    def prepare_bulk(
        self, threads: np.ndarray, keys: np.ndarray
    ) -> PreparedFold | None:
        """Assemble a :class:`PreparedFold` for a static batch (codegen)."""
        if keys.size == 0:
            return None
        return PreparedFold(np.asarray(threads), np.asarray(keys, dtype=np.int64))

    def reduce_bulk_prepared(
        self, prepared: PreparedFold, values: np.ndarray, op: ReduceOp
    ) -> None:
        """:meth:`reduce_bulk` over a precomputed fold plan: identical
        charges and folded state, minus the per-round key sort. Falls back
        to the generic path whenever its preconditions do not hold."""
        values = np.asarray(values)
        if (
            self._batch is not None
            or any(self.maps)
            or values.dtype == object
            or (op.ufunc is None and op.name != "overwrite")
        ):
            self.reduce_bulk(prepared.threads, prepared.keys, values, op)
            return
        counters = self.cluster.counters(self.host_id)
        counters.reduce_calls += prepared.count
        self._batch = (prepared.span, prepared.uniq, prepared.fold(values, op))

    def prepare_bulk_subsets(
        self, threads: np.ndarray, keys: np.ndarray
    ) -> PreparedSubsetFold | None:
        """Assemble a :class:`PreparedSubsetFold` for a static batch whose
        per-round reduces cover varying ascending subsets (codegen)."""
        if keys.size == 0:
            return None
        return PreparedSubsetFold(
            np.asarray(threads), np.asarray(keys, dtype=np.int64)
        )

    def reduce_bulk_subset(
        self,
        prepared: PreparedSubsetFold,
        idx: np.ndarray,
        values: np.ndarray,
        op: ReduceOp,
    ) -> None:
        """:meth:`reduce_bulk` over the subset of ``prepared``'s batch at
        ascending positions ``idx``: identical charges and folded state,
        minus the per-round composite sort. Falls back to the generic path
        whenever its preconditions do not hold."""
        count = int(idx.size)
        if count == 0:
            return
        values = np.asarray(values)
        if (
            self._batch is not None
            or any(self.maps)
            or values.dtype == object
            or (op.ufunc is None and op.name != "overwrite")
        ):
            self.reduce_bulk(
                prepared.threads[idx], prepared.keys[idx], values, op
            )
            return
        counters = self.cluster.counters(self.host_id)
        counters.reduce_calls += count
        self._batch = prepared.fold(idx, values, op)

    def _spill_batch(self) -> None:
        """Move the folded batch into the thread dicts (values unchanged)."""
        span, uniq, folded = self._batch
        self._batch = None
        maps = self.maps
        for composite, value in zip(uniq.tolist(), folded.tolist()):
            maps[composite // span][composite % span] = value

    def pending(self) -> int:
        total = sum(map(len, self.maps))
        if self._batch is not None:
            total += int(self._batch[1].size)
        return total

    def export_state(self) -> tuple:
        """Complete pending-reduction state, for the host-shard exchange
        (``repro.exec.pool``). The returned structure crosses a process
        boundary via pickle, so sharing references with the live maps is
        fine - the pipe serializes a snapshot."""
        return ("tl", self.maps, self._batch)

    def install_state(self, state: tuple) -> None:
        """Replace the pending state with an exported snapshot."""
        tag, maps, batch = state
        if tag != "tl":  # pragma: no cover - strategies never change mid-run
            raise ValueError(f"cannot install {tag!r} state into a CF reduction")
        self.maps = list(maps)
        self._batch = batch

    @property
    def bulk_state_only(self) -> bool:
        """True when no thread holds dict state, so collect_arrays() can
        fold without materializing Python dicts."""
        return not any(self.maps)

    def discard(self) -> None:
        """Drop all pending state without folding or charging.

        The host-sharded reduce-sync (``repro.exec.pool``) folds each
        source host's state on exactly one process - the shard owner, who
        pays the combine charge - and discards the identical replica
        everywhere else."""
        for local_map in self.maps:
            local_map.clear()
        self._batch = None

    def _charge_combine(self) -> None:
        counters = self.cluster.counters(self.host_id)
        # Each entry is scanned while filtering by range and combined once.
        combine_cost = 2 * self.pending()
        if self.serial_combine:
            # Ablation: a single thread combines all thread-local maps.
            # The phase is priced divided by the thread count, so charging
            # T times the work models zero parallel speedup.
            combine_cost *= self.cluster.threads_per_host
        counters.combine_ops += combine_cost

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        """The combining step (Figure 7): disjoint key ranges per thread.

        Charged to the calling phase (reduce-sync), matching the paper's
        observation that CF shifts combining cost into communication time.
        """
        self._charge_combine()
        combined: dict[int, Any] = {}
        for local_map in self.maps:
            if local_map:
                for key, value in local_map.items():
                    if key in combined:
                        combined[key] = op(combined[key], value)
                    else:
                        combined[key] = value
                local_map.clear()
        if self._batch is not None:
            # Thread-major order = thread order, like the dict merge above.
            span, uniq, folded = self._batch
            self._batch = None
            for composite, value in zip(uniq.tolist(), folded.tolist()):
                key = composite % span
                if key in combined:
                    combined[key] = op(combined[key], value)
                else:
                    combined[key] = value
        return combined

    def collect_arrays(self, op: ReduceOp) -> tuple[np.ndarray, np.ndarray]:
        """Bulk collect: the same combining semantics and charge as
        :meth:`collect`, returning (sorted unique keys, values) arrays.
        Requires :attr:`bulk_state_only`."""
        self._charge_combine()
        if self._batch is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        span, uniq, folded = self._batch
        self._batch = None
        # Strip the thread component; the result is the per-thread sorted
        # key runs concatenated in thread order, so one more fold matches
        # the thread-order dict merge of :meth:`collect` (first occurrence
        # assigns, later threads fold left-to-right, overwrite keeps last).
        merged = _fold_batch(uniq % span, folded, op)
        if merged is None:  # pragma: no cover - batches are ufunc-foldable
            raise TypeError(f"cannot fold bulk batch with op {op.name!r}")
        return merged


class SharedMapReduction:
    """One shared concurrent map; same-key cross-thread updates conflict."""

    conflict_free = False

    def __init__(self, cluster: Cluster, host_id: int) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.map: dict[int, Any] = {}
        self._writers: dict[int, set[int]] = {}
        self._map_writers: set[int] = set()
        self._write_count = 0
        # Bulk-path state: folded (sorted unique keys, values) plus per-key
        # first writer and whether more than one thread touched the key
        # (enough to reconstruct exact writer-set conflict behavior if a
        # scalar reduce follows).
        self._bulk_keys: np.ndarray | None = None
        self._bulk_vals: np.ndarray | None = None
        self._bulk_first_writer: np.ndarray | None = None
        self._bulk_multi: np.ndarray | None = None

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        if self._bulk_keys is not None:
            self._spill_bulk()
        counters = self.cluster.counters(self.host_id)
        counters.cas_attempts += 1
        counters.hash_probes += 1
        writers = self._writers.setdefault(key, set())
        writers.add(thread)
        if len(writers) > 1:
            # A second (or later) thread is hammering the same slot: under
            # real interleaving nearly every such update pays a failed CAS
            # and a cache-line transfer.
            counters.cas_conflicts += 1
        # Structural contention: a concurrent hash map takes bucket locks /
        # CAS-es control words on every write, so once several threads
        # write the *same map*, even distinct-key writes collide regularly
        # (modeled at a deterministic 1-in-2 rate).
        self._map_writers.add(thread)
        self._write_count += 1
        if len(self._map_writers) > 1 and self._write_count % 2 == 0:
            counters.cas_conflicts += 1
        if key in self.map:
            self.map[key] = op(self.map[key], value)
        else:
            self.map[key] = value

    def reduce_bulk(
        self,
        threads: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        op: ReduceOp,
    ) -> None:
        """Batched reduce (``threads`` non-decreasing): conflict counts are
        derived arithmetically, bit-identical to the scalar call sequence."""
        count = int(keys.size)
        if count == 0:
            return
        values = np.asarray(values)
        vectorizable = values.dtype != object and (
            op.ufunc is not None or op.name == "overwrite"
        )
        if self.map or self._bulk_keys is not None or not vectorizable:
            if self._bulk_keys is not None:
                self._spill_bulk()
            for thread, key, value in zip(
                threads.tolist(), keys.tolist(), values.tolist()
            ):
                self.reduce(thread, key, value, op)
            return
        counters = self.cluster.counters(self.host_id)
        counters.cas_attempts += count
        counters.hash_probes += count
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_threads = threads[order]
        sorted_values = values[order]
        seg_starts = np.flatnonzero(
            np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
        )
        seg_lens = np.diff(np.r_[seg_starts, count])
        first_writers = sorted_threads[seg_starts]
        # Per-key conflicts: within a key's calls (original order, preserved
        # by the stable sort; threads non-decreasing) the writer set stays
        # singleton through the leading run of the first thread and is
        # multi-writer for every call after it.
        same_as_first = sorted_threads == np.repeat(first_writers, seg_lens)
        uncontended = np.add.reduceat(same_as_first.astype(np.int64), seg_starts)
        counters.cas_conflicts += count - int(uncontended.sum())
        # Structural contention in closed form: call i (1-based within the
        # batch) conflicts iff the map's writer set holds >= 2 threads by
        # then and the running write count W+i is even. The set reaches 2
        # at the first call whose thread differs from the established
        # single writer; the even-count tally over (W+j, W+count] follows.
        write_count = self._write_count
        first_thread = int(threads[0])
        if len(self._map_writers) >= 2 or (
            self._map_writers and first_thread not in self._map_writers
        ):
            eligible_from = 0
        else:
            eligible_from = int(np.searchsorted(threads, first_thread, side="right"))
        counters.cas_conflicts += (write_count + count) // 2 - (
            write_count + eligible_from
        ) // 2
        self._write_count = write_count + count
        self._map_writers.update(np.unique(threads).tolist())
        uniq_keys = sorted_keys[seg_starts]
        if op.name == "overwrite":
            folded = sorted_values[seg_starts + seg_lens - 1]
        else:
            folded = sorted_values[seg_starts]
            if uniq_keys.size != count:
                rest = np.ones(count, dtype=bool)
                rest[seg_starts] = False
                inverse = np.repeat(
                    np.arange(uniq_keys.size, dtype=np.int64), seg_lens
                )
                op.ufunc.at(folded, inverse[rest], sorted_values[rest])
        self._bulk_keys = uniq_keys
        self._bulk_vals = folded
        self._bulk_first_writer = first_writers
        self._bulk_multi = seg_lens != uncontended

    def _spill_bulk(self) -> None:
        """Move folded arrays into the shared dict + writer-set tables.

        A contended key gets a synthetic extra writer (-1): any later real
        thread then sees a multi-writer set, exactly as after the scalar
        calls (the conflict rule only tests ``len(writers) > 1``).
        """
        keys = self._bulk_keys
        vals = self._bulk_vals
        firsts = self._bulk_first_writer
        multi = self._bulk_multi
        self._bulk_keys = self._bulk_vals = None
        self._bulk_first_writer = self._bulk_multi = None
        for key, value, writer, contended in zip(
            keys.tolist(), vals.tolist(), firsts.tolist(), multi.tolist()
        ):
            self.map[key] = value
            self._writers[key] = {writer, -1} if contended else {writer}

    def pending(self) -> int:
        total = len(self.map)
        if self._bulk_keys is not None:
            total += int(self._bulk_keys.size)
        return total

    def export_state(self) -> tuple:
        """Complete pending state including the conflict-accounting tables,
        for the host-shard exchange (see ``ThreadLocalReduction``)."""
        return (
            "sm",
            self.map,
            self._writers,
            self._map_writers,
            self._write_count,
            self._bulk_keys,
            self._bulk_vals,
            self._bulk_first_writer,
            self._bulk_multi,
        )

    def install_state(self, state: tuple) -> None:
        """Replace the pending state with an exported snapshot."""
        if state[0] != "sm":  # pragma: no cover - strategies never change
            raise ValueError(
                f"cannot install {state[0]!r} state into a shared-map reduction"
            )
        (
            _,
            self.map,
            self._writers,
            self._map_writers,
            self._write_count,
            self._bulk_keys,
            self._bulk_vals,
            self._bulk_first_writer,
            self._bulk_multi,
        ) = state

    @property
    def bulk_state_only(self) -> bool:
        return not self.map

    def discard(self) -> None:
        """Drop pending state without charging (see ``ThreadLocalReduction``)."""
        self.map.clear()
        self._writers.clear()
        self._map_writers.clear()
        self._write_count = 0
        self._bulk_keys = self._bulk_vals = None
        self._bulk_first_writer = self._bulk_multi = None

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        del op  # combining happened eagerly, amortized into compute
        if self._bulk_keys is not None:
            self._spill_bulk()
        combined = self.map
        self.map = {}
        self._writers.clear()
        self._map_writers.clear()
        self._write_count = 0
        return combined

    def collect_arrays(self, op: ReduceOp) -> tuple[np.ndarray, np.ndarray]:
        del op
        keys = self._bulk_keys
        vals = self._bulk_vals
        self._bulk_keys = self._bulk_vals = None
        self._bulk_first_writer = self._bulk_multi = None
        self._writers.clear()
        self._map_writers.clear()
        self._write_count = 0
        if keys is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return keys, vals


class KvCasReduction:
    """Distributed CAS retry loops against the key-value store (MC variant).

    Reductions apply *immediately* to the canonical value in the store
    (ReduceSync is then a no-op, Section 6.4). Contention is modeled from
    the number of distinct (host, thread) writers per key this round: each
    additional concurrent writer costs one failed round trip, capped.
    """

    conflict_free = False

    def __init__(
        self,
        cluster: Cluster,
        host_id: int,
        client: KvClient,
        key_fn: Callable[[int], str],
        phase_writers: dict[int, set[tuple[int, int]]],
        on_change: Callable[[int], None],
    ) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.client = client
        self.key_fn = key_fn
        self.phase_writers = phase_writers
        self.on_change = on_change

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        counters = self.cluster.counters(self.host_id)
        writers = self.phase_writers.setdefault(key, set())
        writers.add((self.host_id, thread))
        retries = min(len(writers) - 1, KV_RETRY_CAP)
        # Failed attempts: each one is a wasted get + cas round trip.
        string_key = self.key_fn(key)
        for _ in range(retries):
            self.client.get(self.host_id, string_key)
            self.client.get(self.host_id, string_key)  # the cas leg
            counters.cas_attempts += 1
            counters.cas_conflicts += 1
        # The successful attempt.
        current = self.client.get(self.host_id, string_key)
        counters.cas_attempts += 1
        if current is None:
            new = value
            self.client.set(self.host_id, string_key, new)
            self.on_change(key)
        else:
            old_value, version = current
            new = op(old_value, value)
            self.client.cas(self.host_id, string_key, new, version)
            if new != old_value:
                self.on_change(key)

    def reduce_bulk(
        self,
        threads: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        op: ReduceOp,
    ) -> None:
        # Every reduction is a get+CAS round trip against string keys: the
        # MC layout has no bulk fast path, by design (this *is* the paper's
        # point about property maps layered over a generic kvstore).
        for thread, key, value in zip(
            threads.tolist(), keys.tolist(), np.asarray(values).tolist()
        ):
            self.reduce(thread, key, value, op)

    def pending(self) -> int:
        return 0

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        del op
        self.phase_writers.clear()
        return {}
