"""Reduction strategies: how concurrent Reduce() calls are absorbed.

Three strategies, matching Section 4.2 and the Section 6.4 variants:

* :class:`ThreadLocalReduction` (CF) - every virtual thread owns a private
  map during reduce-compute; the combining step of reduce-sync deals
  disjoint key ranges to threads. Conflicts are impossible by construction.
* :class:`SharedMapReduction` - one concurrent map per host; all threads
  reduce into it with CAS. Concurrent same-key updates from distinct
  threads are counted as conflicts (priced heavily by the cost model:
  cache-line ping-pong plus retry). This is what throttles Pregel-style
  systems on power-law graphs.
* :class:`KvCasReduction` (MC) - reductions are get+CAS retry loops against
  the distributed key-value store, with per-attempt network messages.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.cluster import Cluster
from repro.core.reducers import ReduceOp
from repro.kvstore.client import KvClient

KV_RETRY_CAP = 8


class ThreadLocalReduction:
    """Conflict-free (CF): one private map per virtual thread."""

    conflict_free = True

    def __init__(
        self, cluster: Cluster, host_id: int, serial_combine: bool = False
    ) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.serial_combine = serial_combine
        self.maps: list[dict[int, Any]] = [
            {} for _ in range(cluster.threads_per_host)
        ]

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        counters = self.cluster.counters(self.host_id)
        counters.reduce_calls += 1
        local_map = self.maps[thread]
        if key in local_map:
            local_map[key] = op(local_map[key], value)
        else:
            local_map[key] = value

    def pending(self) -> int:
        return sum(len(m) for m in self.maps)

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        """The combining step (Figure 7): disjoint key ranges per thread.

        Charged to the calling phase (reduce-sync), matching the paper's
        observation that CF shifts combining cost into communication time.
        """
        counters = self.cluster.counters(self.host_id)
        total_entries = sum(len(m) for m in self.maps)
        # Each entry is scanned while filtering by range and combined once.
        combine_cost = 2 * total_entries
        if self.serial_combine:
            # Ablation: a single thread combines all thread-local maps.
            # The phase is priced divided by the thread count, so charging
            # T times the work models zero parallel speedup.
            combine_cost *= self.cluster.threads_per_host
        counters.combine_ops += combine_cost
        combined: dict[int, Any] = {}
        for local_map in self.maps:
            for key, value in local_map.items():
                if key in combined:
                    combined[key] = op(combined[key], value)
                else:
                    combined[key] = value
            local_map.clear()
        return combined


class SharedMapReduction:
    """One shared concurrent map; same-key cross-thread updates conflict."""

    conflict_free = False

    def __init__(self, cluster: Cluster, host_id: int) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.map: dict[int, Any] = {}
        self._writers: dict[int, set[int]] = {}
        self._map_writers: set[int] = set()
        self._write_count = 0

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        counters = self.cluster.counters(self.host_id)
        counters.cas_attempts += 1
        counters.hash_probes += 1
        writers = self._writers.setdefault(key, set())
        writers.add(thread)
        if len(writers) > 1:
            # A second (or later) thread is hammering the same slot: under
            # real interleaving nearly every such update pays a failed CAS
            # and a cache-line transfer.
            counters.cas_conflicts += 1
        # Structural contention: a concurrent hash map takes bucket locks /
        # CAS-es control words on every write, so once several threads
        # write the *same map*, even distinct-key writes collide regularly
        # (modeled at a deterministic 1-in-2 rate).
        self._map_writers.add(thread)
        self._write_count += 1
        if len(self._map_writers) > 1 and self._write_count % 2 == 0:
            counters.cas_conflicts += 1
        if key in self.map:
            self.map[key] = op(self.map[key], value)
        else:
            self.map[key] = value

    def pending(self) -> int:
        return len(self.map)

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        del op  # combining happened eagerly, amortized into compute
        combined = self.map
        self.map = {}
        self._writers.clear()
        self._map_writers.clear()
        self._write_count = 0
        return combined


class KvCasReduction:
    """Distributed CAS retry loops against the key-value store (MC variant).

    Reductions apply *immediately* to the canonical value in the store
    (ReduceSync is then a no-op, Section 6.4). Contention is modeled from
    the number of distinct (host, thread) writers per key this round: each
    additional concurrent writer costs one failed round trip, capped.
    """

    conflict_free = False

    def __init__(
        self,
        cluster: Cluster,
        host_id: int,
        client: KvClient,
        key_fn: Callable[[int], str],
        phase_writers: dict[int, set[tuple[int, int]]],
        on_change: Callable[[int], None],
    ) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.client = client
        self.key_fn = key_fn
        self.phase_writers = phase_writers
        self.on_change = on_change

    def reduce(self, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        counters = self.cluster.counters(self.host_id)
        writers = self.phase_writers.setdefault(key, set())
        writers.add((self.host_id, thread))
        retries = min(len(writers) - 1, KV_RETRY_CAP)
        # Failed attempts: each one is a wasted get + cas round trip.
        string_key = self.key_fn(key)
        for _ in range(retries):
            self.client.get(self.host_id, string_key)
            self.client.get(self.host_id, string_key)  # the cas leg
            counters.cas_attempts += 1
            counters.cas_conflicts += 1
        # The successful attempt.
        current = self.client.get(self.host_id, string_key)
        counters.cas_attempts += 1
        if current is None:
            new = value
            self.client.set(self.host_id, string_key, new)
            self.on_change(key)
        else:
            old_value, version = current
            new = op(old_value, value)
            self.client.cas(self.host_id, string_key, new, version)
            if new != old_value:
                self.on_change(key)

    def pending(self) -> int:
        return 0

    def collect(self, op: ReduceOp) -> dict[int, Any]:
        del op
        self.phase_writers.clear()
        return {}
