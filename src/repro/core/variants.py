"""Runtime variants of the node-property map (Section 6.4, Figure 11).

The paper isolates its three optimizations by building four runtimes that
all execute the same compiler-generated programs:

* ``MC``        - Memcached-backed: modulo-hashed string keys, per-op
  messages, reductions as distributed CAS retry loops, ReduceSync a no-op.
* ``SGR_ONLY``  - scatter-gather-reduce with one shared concurrent map per
  host (modulo-hashed ownership); concurrent same-key reductions conflict.
* ``SGR_CF``    - adds conflict-free thread-local maps.
* ``KIMBAP``    - adds the graph-partition-aware representation (and with
  it pinned mirrors); the default.
"""

from __future__ import annotations

import enum


class RuntimeVariant(enum.Enum):
    MC = "mc"
    SGR_ONLY = "sgr-only"
    SGR_CF = "sgr+cf"
    KIMBAP = "sgr+cf+gar"

    @property
    def uses_gar(self) -> bool:
        return self is RuntimeVariant.KIMBAP

    @property
    def uses_thread_local_maps(self) -> bool:
        return self in (RuntimeVariant.SGR_CF, RuntimeVariant.KIMBAP)

    @property
    def uses_kvstore(self) -> bool:
        return self is RuntimeVariant.MC

    @property
    def label(self) -> str:
        return self.value
