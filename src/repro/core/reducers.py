"""Reduction operators for node-property maps.

``Reduce()`` takes an associative, commutative function (Section 3.1). The
named instances below cover every algorithm in the paper: ``MIN`` for the
connected-components family, ``SUM`` for Louvain/Leiden cluster totals,
``PAIR_MIN``/``PAIR_MAX`` for lexicographic (weight, id) reductions in
Boruvka MSF and priority MIS, ``LOGICAL_OR`` for the work-done reducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """A named associative+commutative binary operator.

    ``ufunc``, when set, is the numpy equivalent used by the bulk execution
    path to fold numeric batches; its unbuffered ``.at`` form applies
    duplicate indices sequentially, so folds are bit-identical to the
    scalar left-to-right application of ``fn``. Operators without a ufunc
    (tuple-valued, boolean short-circuit) fall back to per-item ``fn``.
    """

    name: str
    fn: Callable[[Any, Any], Any]
    ufunc: Any = field(default=None, compare=False)

    def __call__(self, left: Any, right: Any) -> Any:
        return self.fn(left, right)


MIN = ReduceOp("min", min, ufunc=np.minimum)
MAX = ReduceOp("max", max, ufunc=np.maximum)
SUM = ReduceOp("sum", lambda a, b: a + b, ufunc=np.add)
LOGICAL_OR = ReduceOp("or", lambda a, b: bool(a) or bool(b))
LOGICAL_AND = ReduceOp("and", lambda a, b: bool(a) and bool(b))
# Tuples compare lexicographically, so min/max work directly; the aliases
# exist to make call sites state their intent (reduce-by-(key, payload)).
PAIR_MIN = ReduceOp("pair_min", min)
PAIR_MAX = ReduceOp("pair_max", max)
# Last-write-wins "reduction": rebuild-style operators (PageRank's rank
# rebuild) overwrite the property rather than fold into it.
OVERWRITE = ReduceOp("overwrite", lambda old, new: new)

# Operators resolvable by name across process boundaries: ``ReduceOp``
# instances close over lambdas, so the host-shard execution layer
# (``repro.exec.pool``) ships the *name* in its effect bundles and
# resolves it against this table (plus any operators harvested from the
# plan's kernels, which covers algorithm-local custom reducers).
NAMED_REDUCE_OPS: dict[str, ReduceOp] = {
    op.name: op
    for op in (
        MIN,
        MAX,
        SUM,
        LOGICAL_OR,
        LOGICAL_AND,
        PAIR_MIN,
        PAIR_MAX,
        OVERWRITE,
    )
}
