"""The request bitset: deduplicates per-round remote property requests.

Section 4.1: "We use a concurrent bitset and set the i-th bit if node i is
requested, which avoids duplicate requests." In the simulation, setting a
bit is idempotent and race-free by construction; the value of the structure
is the deduplication, which directly reduces request message volume.
"""

from __future__ import annotations

import numpy as np


class ConcurrentBitset:
    """A fixed-size bitset over global node ids."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self._bits = np.zeros(size, dtype=bool)
        self._count = 0

    def set(self, index: int) -> bool:
        """Set bit ``index``; returns True if it was newly set."""
        if self._bits[index]:
            return False
        self._bits[index] = True
        self._count += 1
        return True

    def set_many(self, indices: np.ndarray) -> np.ndarray:
        """Set many bits at once; returns the newly-set mask.

        Equivalent to calling :meth:`set` per index in order: within the
        batch only the first occurrence of a duplicate index can report
        newly-set, and only if the bit was clear beforehand.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        was_set = self._bits[idx].copy()
        first = np.zeros(idx.size, dtype=bool)
        _, first_positions = np.unique(idx, return_index=True)
        first[first_positions] = True
        newly = first & ~was_set
        self._bits[idx] = True
        self._count += int(np.count_nonzero(newly))
        return newly

    def test(self, index: int) -> bool:
        return bool(self._bits[index])

    def clear(self) -> None:
        self._bits[:] = False
        self._count = 0

    def nonzero(self) -> np.ndarray:
        """All set indices, ascending (the aggregation step of request-sync)."""
        return np.flatnonzero(self._bits)

    def export_state(self) -> np.ndarray:
        """Dense state as its set indices (the host-shard exchange form)."""
        return self.nonzero()

    def install_state(self, indices: np.ndarray) -> None:
        """Replace the bitset's contents with exactly ``indices`` set."""
        self._bits[:] = False
        idx = np.asarray(indices, dtype=np.int64)
        self._bits[idx] = True
        self._count = int(idx.size)

    def __len__(self) -> int:
        return self._count

    @property
    def size(self) -> int:
        return self._bits.size
