"""The distributed node-property map (Figures 2, 5, 6, 7 of the paper).

One :class:`NodePropMap` spans the whole simulated cluster: each host holds
a storage backend (:mod:`repro.core.backends`) and a reduction strategy
(:mod:`repro.core.reduction`), both selected by the
:class:`~repro.core.variants.RuntimeVariant`. Compute phases are opened by
the runtime engine; the collective operations here (``request_sync``,
``reduce_sync``, ``broadcast_sync``, ``pin_mirrors``) open their own sync
phases and do all message accounting.

Execution-model contract (Section 4.1):

* reads during a round see values as of the *end of the previous round*;
* ``reduce`` produces partial values that are only visible after
  ``reduce_sync`` routes them to owners (scatter-gather-reduce);
* requested remote properties are materialized at ``request_sync`` and
  dropped at ``reduce_sync``;
* ``is_updated`` answers "did any master property change in the last
  reduce_sync" (the vote itself rides the reduce-sync allreduce).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import PhaseKind
from repro.core.backends import GarHostStore, HashHostStore, make_store
from repro.core.bitset import ConcurrentBitset
from repro.core.reducers import ReduceOp
from repro.core.reduction import (
    KvCasReduction,
    SharedMapReduction,
    ThreadLocalReduction,
)
from repro.core.variants import RuntimeVariant
from repro.kvstore.client import KvClient
from repro.partition.base import PartitionedGraph

KEY_BYTES = 8

# Sentinel for "activity mask not built this round" (None is a valid cache
# value: it marks a built-and-empty active set).
_ACTIVE_UNBUILT = object()


class NodePropMap:
    """A node-id -> property map distributed across the cluster."""

    def __init__(
        self,
        cluster: Cluster,
        pgraph: PartitionedGraph,
        name: str = "prop",
        variant: RuntimeVariant = RuntimeVariant.KIMBAP,
        value_nbytes: int = 8,
        kv_client: KvClient | None = None,
        remote_layout: str = "sorted",
        serial_combine: bool = False,
        request_dedup: bool = True,
    ) -> None:
        self.cluster = cluster
        self.pgraph = pgraph
        self.name = name
        self.variant = variant
        self.value_nbytes = value_nbytes
        self.request_dedup = request_dedup
        num_hosts = cluster.num_hosts
        if pgraph.num_hosts != num_hosts:
            raise ValueError("partitioned graph and cluster disagree on host count")
        self.stores = [
            make_store(variant.uses_gar, cluster, pgraph, h, remote_layout=remote_layout)
            for h in range(num_hosts)
        ]
        self.kv_client: KvClient | None = None
        if variant.uses_kvstore:
            self.kv_client = kv_client or KvClient(cluster)
            kv_writers: dict[int, set[tuple[int, int]]] = {}
            self.reductions: list[Any] = [
                KvCasReduction(
                    cluster,
                    h,
                    self.kv_client,
                    self._kv_key,
                    kv_writers,
                    self._note_change,
                )
                for h in range(num_hosts)
            ]
        elif variant.uses_thread_local_maps:
            self.reductions = [
                ThreadLocalReduction(cluster, h, serial_combine=serial_combine)
                for h in range(num_hosts)
            ]
        else:
            self.reductions = [SharedMapReduction(cluster, h) for h in range(num_hosts)]
        self.bitsets = [ConcurrentBitset(pgraph.num_nodes) for _ in range(num_hosts)]
        # With deduplication disabled (ablation), duplicate requests are
        # kept and re-served: this list records every accepted request.
        self._dup_requests: list[list[int]] = [[] for _ in range(num_hosts)]
        self._op: ReduceOp | None = None
        self._any_updated = False
        self._updated_masters: list[set[int]] = [set() for _ in range(num_hosts)]
        # Activity tracking for data-driven operators (delta propagation):
        # the global ids whose locally-readable copy changed in the last
        # completed round. Gluon exposes the same information through its
        # updated-value metadata; push-style operators use it to skip
        # quiescent nodes.
        # Both buffers start full so the first round after initialization
        # sees every node active (reset_updated swaps buffers per round).
        self._active: list[set[int]] = [
            set(pgraph.parts[h].local_to_global.tolist())
            for h in range(num_hosts)
        ]
        self._next_active: list[set[int]] = [
            set(pgraph.parts[h].local_to_global.tolist())
            for h in range(num_hosts)
        ]
        # Per-host dense bool mask over the last completed round's active
        # set, built lazily on first probe and reused by every kernel in
        # the round (the sets are immutable between buffer swaps; the
        # swap sites invalidate). _ACTIVE_UNBUILT marks "not built yet";
        # None marks a built-and-empty active set.
        self._active_mask_cache: list[Any] = [_ACTIVE_UNBUILT] * num_hosts
        self._pinned = False
        self._pin_invariant = "none"
        self._mirror_filter_cache: dict[str, list[dict[int, np.ndarray]]] = {}

    # ------------------------------------------------------------------ util

    def _kv_key(self, key: int) -> str:
        return f"npm:{self.name}:{key}"

    def _note_change(self, key: int) -> None:
        self._any_updated = True

    def owner_of(self, key: int) -> int:
        if self.variant.uses_gar:
            return int(self.pgraph.owner[key])
        return key % self.cluster.num_hosts

    def _report_memory(self) -> None:
        """Report this map's live value-slot footprint per host.

        Counted: the dense/owned canonical storage, the materialized remote
        cache, and the thread-local (or shared) reduction maps - the extra
        memory the paper attributes to CF ("max RSS ... on average 10%
        higher than Vite", Section 6.2).
        """
        from repro.core.backends import GarHostStore

        for host in range(self.cluster.num_hosts):
            store = self.stores[host]
            if isinstance(store, GarHostStore):
                canonical = store.part.num_local
            else:
                canonical = len(store.owned)
            slots = canonical + store.remote_cache_size + self.reductions[host].pending()
            self.cluster.track_memory(host, f"npm:{self.name}", slots)

    @property
    def pinned(self) -> bool:
        return self._pinned

    # --------------------------------------------------------------- user API

    def set(self, host: int, key: int, value: Any) -> None:
        """Initialization-only write (Figure 2's Set); no race detection.

        The canonical value lands at the key's owner; a cross-host Set
        sends one message.
        """
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            self.kv_client.set(host, self._kv_key(key), value)
            return
        owner = self.owner_of(key)
        if owner != host:
            self.cluster.network.send(host, owner, KEY_BYTES + self.value_nbytes)
        self.stores[owner].write_master(key, value)

    def read(self, host: int, key: int) -> Any:
        """Read a property by global node id (Figure 2's Read)."""
        return self.stores[host].read(int(key))

    def read_local(self, host: int, local_id: int) -> Any:
        """Read by local id: the fast path for active nodes and edge endpoints."""
        return self.stores[host].read_local(local_id)

    def read_local_bulk(self, host: int, local_ids: np.ndarray) -> np.ndarray:
        """Batched :meth:`read_local`: identical accounting, one array out."""
        return self.stores[host].read_local_bulk(
            np.asarray(local_ids, dtype=np.int64)
        )

    def reduce(self, host: int, thread: int, key: int, value: Any, op: ReduceOp) -> None:
        """Reduce ``value`` onto ``key``'s property (visible next round)."""
        if not 0 <= key < self.pgraph.num_nodes:
            raise KeyError(
                f"reduce target {key} is not a node id (graph has "
                f"{self.pgraph.num_nodes} nodes)"
            )
        if self._op is None:
            self._op = op
        elif self._op.name != op.name:
            raise ValueError(
                f"map {self.name!r} reduced with {op.name!r} after {self._op.name!r}; "
                "a map uses a single reduction operator per loop"
            )
        self.reductions[host].reduce(thread, int(key), value, op)

    def reduce_bulk(
        self,
        host: int,
        threads: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        op: ReduceOp,
    ) -> None:
        """Batched :meth:`reduce` (the bulk execution path).

        ``threads`` must be non-decreasing - exactly what the static
        dealing of ``par_for_bulk`` produces. The contract is byte-identical
        counters, conflicts, and folded values vs the per-item calls.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        bad = (keys < 0) | (keys >= self.pgraph.num_nodes)
        if bad.any():
            key = int(keys[bad][0])
            raise KeyError(
                f"reduce target {key} is not a node id (graph has "
                f"{self.pgraph.num_nodes} nodes)"
            )
        if self._op is None:
            self._op = op
        elif self._op.name != op.name:
            raise ValueError(
                f"map {self.name!r} reduced with {op.name!r} after {self._op.name!r}; "
                "a map uses a single reduction operator per loop"
            )
        self.reductions[host].reduce_bulk(
            np.asarray(threads), keys, np.asarray(values), op
        )

    def prepare_reduce_bulk(
        self, host: int, threads: np.ndarray, keys: np.ndarray
    ) -> Any | None:
        """Precompute the fold plan for a *static* reduce batch (codegen).

        Generated kernels (``repro.exec.codegen``) push with the same
        ``(threads, keys)`` arrays every round, so the key validation and
        the composite-key sort of :meth:`reduce_bulk` are hoisted to
        generation time. Returns None when this host's reduction strategy
        has no prepared path (shared-map and key-value-store strategies
        draw conflicts from runtime state) - callers then use the plain
        :meth:`reduce_bulk`.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return None
        prepare = getattr(self.reductions[host], "prepare_bulk", None)
        if prepare is None:
            return None
        bad = (keys < 0) | (keys >= self.pgraph.num_nodes)
        if bad.any():
            key = int(keys[bad][0])
            raise KeyError(
                f"reduce target {key} is not a node id (graph has "
                f"{self.pgraph.num_nodes} nodes)"
            )
        return prepare(np.asarray(threads), keys)

    def reduce_bulk_prepared(
        self, host: int, prepared: Any, values: np.ndarray, op: ReduceOp
    ) -> None:
        """:meth:`reduce_bulk` via a :meth:`prepare_reduce_bulk` plan:
        byte-identical charges, conflicts, and folded state."""
        if self._op is None:
            self._op = op
        elif self._op.name != op.name:
            raise ValueError(
                f"map {self.name!r} reduced with {op.name!r} after {self._op.name!r}; "
                "a map uses a single reduction operator per loop"
            )
        self.reductions[host].reduce_bulk_prepared(
            prepared, np.asarray(values), op
        )

    def prepare_reduce_bulk_subsets(
        self, host: int, threads: np.ndarray, keys: np.ndarray
    ) -> Any | None:
        """Precompute the subset-fold plan for a static batch (codegen).

        Frontier-aware kernels (``PreparedFrontierPush``) reduce with a
        per-round *subset* of a frozen edge expansion, so the key
        validation and the composite stable sort hoist to generation time
        while the subset selection stays per round. Returns None when this
        host's reduction strategy has no prepared path (see
        :meth:`prepare_reduce_bulk`).
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return None
        prepare = getattr(self.reductions[host], "prepare_bulk_subsets", None)
        if prepare is None:
            return None
        bad = (keys < 0) | (keys >= self.pgraph.num_nodes)
        if bad.any():
            key = int(keys[bad][0])
            raise KeyError(
                f"reduce target {key} is not a node id (graph has "
                f"{self.pgraph.num_nodes} nodes)"
            )
        return prepare(np.asarray(threads), keys)

    def reduce_bulk_subset(
        self, host: int, prepared: Any, idx: np.ndarray, values: np.ndarray,
        op: ReduceOp,
    ) -> None:
        """:meth:`reduce_bulk` over the ascending-position subset ``idx``
        of a :meth:`prepare_reduce_bulk_subsets` plan: byte-identical
        charges, conflicts, and folded state."""
        if idx.size == 0:
            return
        if self._op is None:
            self._op = op
        elif self._op.name != op.name:
            raise ValueError(
                f"map {self.name!r} reduced with {op.name!r} after {self._op.name!r}; "
                "a map uses a single reduction operator per loop"
            )
        self.reductions[host].reduce_bulk_subset(
            prepared, idx, np.asarray(values), op
        )

    # ----------------------------------------------------------- compiler API

    def reset_updated(self) -> None:
        self._any_updated = False
        self._active = self._next_active
        self._next_active = [set() for _ in range(self.cluster.num_hosts)]
        self._invalidate_active_cache()

    def _invalidate_active_cache(self) -> None:
        """Drop the cached activity masks (the buffers just swapped)."""
        self._active_mask_cache = [_ACTIVE_UNBUILT] * self.cluster.num_hosts

    def active_mask(self, host: int) -> np.ndarray | None:
        """Dense bool mask (by global node id) of ``host``'s last-round
        active set, or None when the set is empty.

        Built once per round per host and frozen: ``_active`` is only
        ever replaced wholesale (buffer swap, checkpoint restore, epoch
        install - all of which invalidate), never mutated in place, so
        every activity probe in a round shares one gather instead of
        rebuilding ``np.isin`` per kernel.
        """
        cached = self._active_mask_cache[host]
        if cached is _ACTIVE_UNBUILT:
            active = self._active[host]
            if active:
                mask = np.zeros(self.pgraph.num_nodes, dtype=bool)
                mask[np.fromiter(active, dtype=np.int64, count=len(active))] = True
                mask.flags.writeable = False
                cached = mask
            else:
                cached = None
            self._active_mask_cache[host] = cached
        return cached

    def is_active(self, host: int, key: int) -> bool:
        """Did ``key``'s locally-readable copy change last round?

        Data-driven (push-style) operators use this to skip quiescent
        nodes. Conservatively always True for the non-GAR variants, whose
        per-round refetch rewrites the whole cache.
        """
        if not self.variant.uses_gar:
            return True
        return key in self._active[host]

    def is_active_bulk(self, host: int, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_active` (uncharged, like the scalar probe).

        Gathers from the cached :meth:`active_mask`, so the per-round
        frontier materialization happens once per host, not once per
        kernel probe (membership results are identical to the former
        ``np.isin`` scan)."""
        keys = np.asarray(keys)
        if not self.variant.uses_gar:
            return np.ones(keys.size, dtype=bool)
        mask = self.active_mask(host)
        if mask is None:
            return np.zeros(keys.size, dtype=bool)
        return mask[keys]

    def is_updated(self) -> bool:
        """Did the last reduce_sync change any master value? (BSP-round vote)"""
        return self._any_updated

    def request(self, host: int, key: int) -> bool:
        """Mark ``key`` wanted on ``host`` next request-sync; deduplicated.

        Requests for keys already readable locally (own masters; pinned
        mirrors) are skipped - the runtime-side half of the compiler's
        RequestSync elision reasoning.
        """
        key = int(key)
        counters = self.cluster.counters(host)
        counters.local_ops += 1
        store = self.stores[host]
        if isinstance(store, GarHostStore):
            if store.master_local(key) is not None:
                return False
            if self._pinned:
                local = store.part.global_to_local.get(key)
                if local is not None and local >= store.part.num_masters:
                    return False
        if not self.request_dedup:
            self._dup_requests[host].append(key)
            self.bitsets[host].set(key)
            return True
        return self.bitsets[host].set(key)

    def request_bulk(self, host: int, keys: np.ndarray) -> np.ndarray:
        """Batched :meth:`request`; returns the per-key accepted mask."""
        keys = np.asarray(keys, dtype=np.int64)
        counters = self.cluster.counters(host)
        counters.local_ops += int(keys.size)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        store = self.stores[host]
        eligible = np.ones(keys.size, dtype=bool)
        if isinstance(store, GarHostStore):
            own = self.pgraph.owner[keys] == host
            if not store._masters_contiguous:
                # master_local() pays one probe per owned-key translation.
                store._check_counters().hash_probes += int(np.count_nonzero(own))
            eligible = ~own
            if self._pinned:
                translate = store.part.global_to_local
                num_masters = store.part.num_masters
                mirror = np.fromiter(
                    (translate.get(int(k), -1) >= num_masters for k in keys),
                    dtype=bool,
                    count=keys.size,
                )
                eligible &= ~mirror
        accepted = np.zeros(keys.size, dtype=bool)
        eligible_idx = np.flatnonzero(eligible)
        if self.request_dedup:
            accepted[eligible_idx] = self.bitsets[host].set_many(keys[eligible_idx])
        else:
            self._dup_requests[host].extend(keys[eligible_idx].tolist())
            self.bitsets[host].set_many(keys[eligible_idx])
            accepted[eligible_idx] = True
        return accepted

    def request_sync(self) -> None:
        """Serve this round's requests: one message per host pair each way."""
        with self.cluster.phase(PhaseKind.REQUEST_SYNC, label=self.name):
            if self.variant.uses_kvstore:
                self._kv_fetch_requests(include_always=False)
                return
            requests: list[np.ndarray] = []
            for host in range(self.cluster.num_hosts):
                if self.request_dedup:
                    keys = self.bitsets[host].nonzero()
                else:
                    keys = np.asarray(sorted(self._dup_requests[host]), dtype=np.int64)
                    self._dup_requests[host].clear()
                self.bitsets[host].clear()
                if not self.variant.uses_gar:
                    always = np.fromiter(
                        self.stores[host].always_fetch_keys(), dtype=np.int64
                    )
                    keys = np.union1d(keys, always)
                requests.append(keys)
            self._serve_requests(requests)
        self._report_memory()

    def _serve_requests(self, requests: list[np.ndarray]) -> None:
        for host, keys in enumerate(requests):
            if keys.size == 0:
                continue
            owners = (
                self.pgraph.owner[keys]
                if self.variant.uses_gar
                else keys % self.cluster.num_hosts
            )
            gathered_values: list[Any] = [None] * keys.size
            for owner_host in np.unique(owners):
                owner_host = int(owner_host)
                mask = owners == owner_host
                owned_keys = keys[mask]
                if owner_host != host:
                    self.cluster.network.send(
                        host, owner_host, KEY_BYTES * owned_keys.size
                    )
                served = self.stores[owner_host].serve_master_bulk(owned_keys)
                if owner_host != host:
                    self.cluster.network.send(
                        owner_host,
                        host,
                        (KEY_BYTES + self.value_nbytes) * owned_keys.size,
                    )
                for index, value in zip(np.flatnonzero(mask), served):
                    gathered_values[int(index)] = value
            self.stores[host].materialize_remote(keys, gathered_values)

    def _kv_fetch_requests(self, include_always: bool) -> None:
        assert self.kv_client is not None
        for host in range(self.cluster.num_hosts):
            keys = set(self.bitsets[host].nonzero().tolist())
            self.bitsets[host].clear()
            if include_always:
                keys.update(self.stores[host].always_fetch_keys())
            if not keys:
                continue
            key_list = sorted(keys)
            string_keys = [self._kv_key(k) for k in key_list]
            found = self.kv_client.mget(host, string_keys)
            values = []
            present = []
            for key, string_key in zip(key_list, string_keys):
                if string_key in found:
                    present.append(key)
                    values.append(found[string_key][0])
            self.stores[host].materialize_remote(
                np.asarray(present, dtype=np.int64), values
            )
        self._report_memory()

    def reduce_sync(self, pool: Any = None) -> None:
        """Scatter-gather-reduce: route partials to owners, apply, vote.

        ``pool`` (a ``repro.exec.pool.HostShardPool`` endpoint mid-run)
        opts into the host-sharded collective: when the pending state is
        bulk-foldable GAR state, each process folds and applies only its
        own shard's hosts and the group converges through two shared-arena
        all-gathers (:meth:`_sgr_reduce_sharded`). Anything else - scalar
        dict state, object-valued batches, non-GAR variants - falls back
        to the replicated serial path; the decision inputs are replicated
        state, so every process picks the same branch.
        """
        # Peak-footprint moment: thread-local maps full, remote cache
        # still materialized.
        self._report_memory()
        with self.cluster.phase(PhaseKind.REDUCE_SYNC, label=self.name) as record:
            if self.variant.uses_kvstore:
                # Reductions already applied via CAS; ReduceSync is a no-op
                # apart from dropping stale caches and the round vote.
                for store in self.stores:
                    store.drop_remote()
                self.reductions[0].collect(self._op or ReduceOp("noop", lambda a, b: a))
                self.cluster.network.allreduce(1)
            else:
                op = self._op
                if (
                    pool is not None
                    and self.variant.uses_gar
                    and op is not None
                    and all(
                        getattr(reduction, "bulk_state_only", False)
                        for reduction in self.reductions
                    )
                ):
                    self._sgr_reduce_sharded(op, pool, record)
                else:
                    self._sgr_reduce()
                self.cluster.network.allreduce(1)
        if not self.variant.uses_gar:
            # Without GAR there is no locally-materialized master copy, so
            # every host refetches the keys it reads unconditionally (its
            # masters, plus mirrors while pinned) for the next round.
            self._refetch_all(f"{self.name}:refetch")

    def _refetch_all(self, label: str) -> None:
        """One unconditional refetch round for the non-GAR variants: every
        host re-reads its always-fetch set (masters, plus mirrors while
        pinned), via the kvstore or a request/serve exchange."""
        with self.cluster.phase(PhaseKind.REQUEST_SYNC, label=label):
            if self.variant.uses_kvstore:
                self._kv_fetch_requests(include_always=True)
            else:
                requests = [
                    np.fromiter(store.always_fetch_keys(), dtype=np.int64)
                    for store in self.stores
                ]
                self._serve_requests(requests)

    def _sgr_reduce(self) -> None:
        op = self._op
        if op is not None and all(
            getattr(reduction, "bulk_state_only", False)
            for reduction in self.reductions
        ):
            self._sgr_reduce_bulk(op)
            return
        payloads: dict[tuple[int, int], list[tuple[int, Any]]] = {}
        for host in range(self.cluster.num_hosts):
            combined = self.reductions[host].collect(op) if op else {}
            for key, value in combined.items():
                owner = self.owner_of(key)
                if owner == host:
                    self._apply_at_owner(owner, key, value, op)
                else:
                    payloads.setdefault((host, owner), []).append((key, value))
        for (src, dst), items in payloads.items():
            self.cluster.network.send(
                src, dst, (KEY_BYTES + self.value_nbytes) * len(items)
            )
            for key, value in items:
                self._apply_at_owner(dst, key, value, op)
        for store in self.stores:
            store.drop_remote()

    def _sgr_reduce_bulk(self, op: ReduceOp) -> None:
        """Array scatter-gather-reduce: collect per-host folded arrays,
        apply self-owned partials during the host scan (as the scalar path
        does), then ship and apply cross-host payloads in ascending source
        order - the same per-key application order, message count, and
        byte totals as the scalar path."""
        num_hosts = self.cluster.num_hosts
        payloads: list[tuple[int, int, np.ndarray, np.ndarray]] = []
        for host in range(num_hosts):
            keys, values = self.reductions[host].collect_arrays(op)
            if keys.size == 0:
                continue
            owners = (
                self.pgraph.owner[keys]
                if self.variant.uses_gar
                else keys % num_hosts
            )
            own = owners == host
            if own.any():
                self._apply_at_owner_bulk(host, keys[own], values[own], op)
            remote = ~own
            if remote.any():
                remote_keys = keys[remote]
                remote_values = values[remote]
                remote_owners = owners[remote]
                for owner_host in np.unique(remote_owners).tolist():
                    mask = remote_owners == owner_host
                    payloads.append(
                        (host, int(owner_host), remote_keys[mask], remote_values[mask])
                    )
        for src, dst, keys, values in payloads:
            self.cluster.network.send(
                src, dst, (KEY_BYTES + self.value_nbytes) * int(keys.size)
            )
            self._apply_at_owner_bulk(dst, keys, values, op)
        for store in self.stores:
            store.drop_remote()

    def _sgr_reduce_sharded(self, op: ReduceOp, pool: Any, record: Any) -> None:
        """Host-sharded :meth:`_sgr_reduce_bulk` (the ``jobs=N`` backend).

        Stage 1 - sharded collect: each process folds the pending
        reductions of its own shard's source hosts (the combine charges
        land there) and discards the identical replicas of the rest; one
        all-gather distributes the folded arrays, after which every
        process holds the full routing input.

        Stage 2 - sharded apply: each process routes all payloads but
        applies only those bound for owners in its shard, in the exact
        serial per-owner order (the self-owned partial first - the serial
        host scan applies it inline at ``src == owner`` - then cross-host
        payloads by ascending source), charging the sends and owner-side
        counters for exactly that work. A second all-gather ships each
        owner's changed ``(key, value)`` deltas plus the phase's counter
        and traffic rows; replicas install the deltas uncharged and the
        coordinator folds the rows into ``record``. Every payload is
        handled by exactly one process and per-host charges are additive,
        so the merged record and final state are byte-identical to the
        serial visit.
        """
        num_hosts = self.cluster.num_hosts
        folded: list[tuple[np.ndarray, np.ndarray] | None] = [None] * num_hosts
        for host in range(num_hosts):
            if host in pool.shard:
                folded[host] = self.reductions[host].collect_arrays(op)
            else:
                self.reductions[host].discard()
        gathered = pool.exchange_shards([folded[host] for host in pool.shard])
        for index, shard in enumerate(pool.shards):
            for host, arrays in zip(shard, gathered[index]):
                folded[host] = arrays
        own_partial: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        incoming: dict[int, list[tuple[int, np.ndarray, np.ndarray]]] = {}
        for src in range(num_hosts):
            keys, values = folded[src]
            if keys.size == 0:
                continue
            owners = self.pgraph.owner[keys]
            own = owners == src
            if own.any():
                own_partial[src] = (keys[own], values[own])
            remote = ~own
            if remote.any():
                remote_keys = keys[remote]
                remote_values = values[remote]
                remote_owners = owners[remote]
                for owner_host in np.unique(remote_owners).tolist():
                    mask = remote_owners == owner_host
                    incoming.setdefault(int(owner_host), []).append(
                        (src, remote_keys[mask], remote_values[mask])
                    )
        deltas: dict[int, tuple[np.ndarray, list[Any]]] = {}
        for dst in pool.shard:
            sequence: list[tuple[int, np.ndarray, np.ndarray]] = []
            if dst in own_partial:
                keys, values = own_partial[dst]
                sequence.append((dst, keys, values))
            sequence.extend(incoming.get(dst, ()))
            changed_keys: set[int] = set()
            for src, keys, values in sequence:
                if src != dst:
                    self.cluster.network.send(
                        src, dst, (KEY_BYTES + self.value_nbytes) * int(keys.size)
                    )
                changed = self.stores[dst].apply_master_bulk(keys, values, op)
                if changed.size:
                    changed_list = changed.tolist()
                    self._any_updated = True
                    self._updated_masters[dst].update(changed_list)
                    self._next_active[dst].update(changed_list)
                    changed_keys.update(changed_list)
            if changed_keys:
                keys = np.fromiter(
                    sorted(changed_keys), dtype=np.int64, count=len(changed_keys)
                )
                deltas[dst] = (keys, self.stores[dst].peek_masters(keys))
        blob = {"deltas": deltas, "updated": self._any_updated}
        for index, peer in enumerate(pool.exchange_shards(blob, record=record)):
            if index == pool.index:
                continue
            if peer["updated"]:
                self._any_updated = True
            for dst, (keys, values) in peer["deltas"].items():
                self.stores[dst].poke_masters(keys, values)
                key_list = keys.tolist()
                self._updated_masters[dst].update(key_list)
                self._next_active[dst].update(key_list)
        for store in self.stores:
            store.drop_remote()

    def _apply_at_owner(self, owner: int, key: int, value: Any, op: ReduceOp) -> None:
        changed = self.stores[owner].apply_master(key, value, op)
        if changed:
            self._any_updated = True
            if self.variant.uses_gar:
                self._updated_masters[owner].add(key)
                self._next_active[owner].add(key)

    def _apply_at_owner_bulk(
        self, owner: int, keys: np.ndarray, values: np.ndarray, op: ReduceOp
    ) -> None:
        changed = self.stores[owner].apply_master_bulk(keys, values, op)
        if changed.size:
            self._any_updated = True
            if self.variant.uses_gar:
                changed_list = changed.tolist()
                self._updated_masters[owner].update(changed_list)
                self._next_active[owner].update(changed_list)

    # ------------------------------------------------------- pinned mirrors

    def pin_mirrors(self, invariant: str = "none") -> None:
        """Materialize mirror properties and broadcast master values to them.

        ``invariant`` applies Gluon's partitioning-invariant elisions:
        ``"push"`` only feeds mirrors that have outgoing edges (push-style
        operators never read the others), ``"pull"`` only those with
        incoming edges, ``"none"`` feeds all mirrors.
        """
        if invariant not in ("none", "push", "pull"):
            raise ValueError(f"unknown invariant {invariant!r}")
        self._pinned = True
        self._pin_invariant = invariant
        for store in self.stores:
            store.pin()
        if self.variant.uses_gar:
            with self.cluster.phase(
                PhaseKind.BROADCAST_SYNC, label=f"{self.name}:pin"
            ):
                self._broadcast(full=True)
        else:
            # Non-GAR variants cannot broadcast (no partition awareness);
            # the pinned mirrors join the per-round refetch set instead.
            self._refetch_all(f"{self.name}:pin-fetch")

    def unpin_mirrors(self) -> None:
        self._pinned = False
        for store in self.stores:
            store.unpin()

    def broadcast_sync(self, pool: Any = None) -> None:
        """Push updated master values to pinned mirrors (one-way traffic).

        With ``pool`` (host-shard backend mid-run) the fan-out shards by
        owner host: see :meth:`_broadcast_sharded`.
        """
        if not self._pinned or not self.variant.uses_gar:
            return
        with self.cluster.phase(PhaseKind.BROADCAST_SYNC, label=self.name) as record:
            if pool is not None:
                self._broadcast_sharded(pool, record)
            else:
                self._broadcast(full=False)

    def _mirror_targets(self, invariant: str) -> list[dict[int, np.ndarray]]:
        """fan-out[owner][mirror_host] -> global ids to feed, after elision."""
        cached = self._mirror_filter_cache.get(invariant)
        if cached is not None:
            return cached
        fan_out: list[dict[int, np.ndarray]] = [
            {} for _ in range(self.cluster.num_hosts)
        ]
        for owner_host, pairs in enumerate(self.pgraph.mirror_hosts_by_owner):
            for mirror_host, ids in pairs:
                part = self.pgraph.parts[mirror_host]
                if invariant == "none":
                    kept = ids
                else:
                    locals_ = np.asarray([part.global_to_local[int(g)] for g in ids])
                    if invariant == "push":
                        degrees = part.indptr[locals_ + 1] - part.indptr[locals_]
                    else:
                        degrees = part.in_degrees[locals_]
                    kept = ids[degrees > 0]
                if kept.size:
                    fan_out[owner_host][mirror_host] = kept
        self._mirror_filter_cache[invariant] = fan_out
        return fan_out

    def _pending_mask(self, pending: set[int]) -> np.ndarray:
        """Dense bool mask over global ids of an updated-masters set: one
        scatter per owner host, then every fan-out pair filters by O(|ids|)
        gather instead of a per-pair ``np.isin`` sort."""
        mask = np.zeros(self.pgraph.num_nodes, dtype=bool)
        mask[np.fromiter(pending, dtype=np.int64, count=len(pending))] = True
        return mask

    def _broadcast(self, full: bool) -> None:
        fan_out = self._mirror_targets(self._pin_invariant)
        for owner_host in range(self.cluster.num_hosts):
            pending = self._updated_masters[owner_host]
            pending_mask: np.ndarray | None = None
            if not full and pending:
                pending_mask = self._pending_mask(pending)
            for mirror_host, ids in fan_out[owner_host].items():
                if full:
                    selected = ids
                else:
                    if pending_mask is None:
                        continue
                    selected = ids[pending_mask[ids]]
                if selected.size == 0:
                    continue
                self.cluster.network.send(
                    owner_host,
                    mirror_host,
                    (KEY_BYTES + self.value_nbytes) * selected.size,
                )
                values = self.stores[owner_host].serve_master_bulk(selected)
                self.stores[mirror_host].write_mirror_bulk(selected, values)
                if not full:
                    self._next_active[mirror_host].update(selected.tolist())
        # Keys may have mirrors on several hosts, so the pending sets only
        # clear after the whole fan-out ran.
        for owner_host in range(self.cluster.num_hosts):
            self._updated_masters[owner_host].clear()

    def _broadcast_sharded(self, pool: Any, record: Any) -> None:
        """Owner-sharded :meth:`_broadcast` (the ``jobs=N`` backend).

        Each process runs the fan-out only for owner hosts in its shard,
        charging the sends, the owner-side serves, and the mirror-side
        writes of exactly that work (mirror hosts may lie outside the
        shard - the all-gather's full counter-row merge accounts them on
        the coordinator). One all-gather then ships the written mirror
        slabs so every replica converges. A key has one owner, so fan-out
        writes are disjoint across processes and the merged charges are
        additive-identical to the serial owner scan.
        """
        fan_out = self._mirror_targets(self._pin_invariant)
        outgoing: list[tuple[int, np.ndarray, list[Any]]] = []
        for owner_host in pool.shard:
            pending = self._updated_masters[owner_host]
            if not pending:
                continue
            pending_mask = self._pending_mask(pending)
            for mirror_host, ids in fan_out[owner_host].items():
                selected = ids[pending_mask[ids]]
                if selected.size == 0:
                    continue
                self.cluster.network.send(
                    owner_host,
                    mirror_host,
                    (KEY_BYTES + self.value_nbytes) * selected.size,
                )
                values = self.stores[owner_host].serve_master_bulk(selected)
                self.stores[mirror_host].write_mirror_bulk(selected, values)
                self._next_active[mirror_host].update(selected.tolist())
                outgoing.append((mirror_host, selected, values))
        for index, peer in enumerate(pool.exchange_shards(outgoing, record=record)):
            if index == pool.index:
                continue
            for mirror_host, keys, values in peer:
                self.stores[mirror_host].poke_mirrors(keys, values)
                self._next_active[mirror_host].update(keys.tolist())
        for owner_host in range(self.cluster.num_hosts):
            self._updated_masters[owner_host].clear()

    # --------------------------------------------------------------- helpers

    def set_initial(self, value_of: Callable[[int], Any]) -> None:
        """Initialize every node's canonical property (an init ParFor)."""
        with self.cluster.phase(PhaseKind.INIT, label=f"{self.name}:init"):
            for host in range(self.cluster.num_hosts):
                counters = self.cluster.counters(host)
                for key in self.pgraph.parts[host].masters_global.tolist():
                    counters.node_iters += 1
                    self.set(host, key, value_of(key))
        self._report_memory()
        if not self.variant.uses_gar:
            self._refetch_all(f"{self.name}:init-fetch")

    def set_initial_bulk(self, values_of: Callable[[np.ndarray], np.ndarray]) -> None:
        """Vectorized :meth:`set_initial`: ``values_of`` maps an array of
        global ids to an array of values. Byte-identical accounting."""
        with self.cluster.phase(PhaseKind.INIT, label=f"{self.name}:init"):
            for host in range(self.cluster.num_hosts):
                keys = self.pgraph.parts[host].masters_global
                self.cluster.counters(host).node_iters += int(keys.size)
                if keys.size == 0:
                    continue
                self._set_bulk(host, keys, np.asarray(values_of(keys)))
        self._report_memory()
        if not self.variant.uses_gar:
            self._refetch_all(f"{self.name}:init-fetch")

    def _set_bulk(self, host: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Batched :meth:`set` for keys iterated in ascending order."""
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            for key, value in zip(keys.tolist(), values.tolist()):
                self.kv_client.set(host, self._kv_key(key), value)
            return
        if self.variant.uses_gar:
            # GAR masters are owned by their own host: no network traffic.
            self.stores[host].write_master_bulk(keys, values.tolist())
            return
        owners = keys % self.cluster.num_hosts
        for owner in np.unique(owners).tolist():
            mask = owners == owner
            owned_keys = keys[mask]
            self.cluster.network.send_many(
                host, owner, KEY_BYTES + self.value_nbytes, int(owned_keys.size)
            )
            self.stores[owner].write_master_bulk(
                owned_keys, values[mask].tolist()
            )

    def reset_values(self, value_of: Callable[[int], Any]) -> None:
        """Reinitialize every canonical value (a fresh init ParFor).

        Lets per-round scratch maps (e.g. Boruvka's best-edge map) be
        reused instead of reallocated; costs the same as set_initial.
        """
        self._op = None
        self._any_updated = False
        for pending in self._updated_masters:
            pending.clear()
        self.set_initial(value_of)

    def reset_values_bulk(
        self, values_of: Callable[[np.ndarray], np.ndarray]
    ) -> None:
        """Vectorized :meth:`reset_values` (same cost as set_initial_bulk)."""
        self._op = None
        self._any_updated = False
        for pending in self._updated_masters:
            pending.clear()
        self.set_initial_bulk(values_of)

    def snapshot(self) -> dict[int, Any]:
        """All canonical master values, for verification (not charged)."""
        result: dict[int, Any] = {}
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            # One prefix scan per server shard instead of formatting and
            # probing every possible node id; ascending insertion keeps the
            # result's iteration order identical to the per-id probes.
            prefix = self._kv_prefix()
            found: dict[int, Any] = {}
            for server in self.kv_client.servers:
                for string_key, value in server.scan_prefix(prefix):
                    suffix = string_key[len(prefix):]
                    if suffix.isdigit():
                        found[int(suffix)] = value
            for key in sorted(found):
                result[key] = found[key]
            return result
        for host in range(self.cluster.num_hosts):
            store = self.stores[host]
            if isinstance(store, GarHostStore):
                for local, key in enumerate(store.part.masters_global.tolist()):
                    value = store.values[local]
                    if value is not None:
                        result[key] = value
            else:
                assert isinstance(store, HashHostStore)
                result.update(store.owned)
        return result

    def snapshot_array(self) -> np.ndarray:
        """Canonical master values as one dense array over global node ids.

        The bulk algorithms' counterpart of :meth:`snapshot` (not charged).
        Requires every node to hold a numeric value.
        """
        num_nodes = self.pgraph.num_nodes
        if self.variant.uses_gar and all(
            store._masters_contiguous for store in self.stores
        ):
            chunks: list[tuple[int, np.ndarray]] = []
            for store in self.stores:
                num_masters = store.part.num_masters
                if num_masters == 0:
                    continue
                arr = np.asarray(store.values[:num_masters])
                if arr.dtype == object:
                    raise ValueError(
                        f"map {self.name!r} has uninitialized or non-numeric "
                        "masters; snapshot_array needs a value for every node"
                    )
                chunks.append((store._master_base, arr))
            filled = sum(arr.size for _, arr in chunks)
            if filled != num_nodes:
                raise ValueError(
                    f"map {self.name!r} has {filled} of {num_nodes} values; "
                    "snapshot_array needs a value for every node"
                )
            out = np.zeros(
                num_nodes,
                dtype=np.result_type(*[arr.dtype for _, arr in chunks])
                if chunks
                else np.float64,
            )
            for base, arr in chunks:
                out[base : base + arr.size] = arr
            return out
        values = self.snapshot()
        if len(values) != num_nodes:
            raise ValueError(
                f"map {self.name!r} has {len(values)} of {num_nodes} values; "
                "snapshot_array needs a value for every node"
            )
        return np.asarray([values[key] for key in range(num_nodes)])

    def pending_reductions(self) -> int:
        return sum(reduction.pending() for reduction in self.reductions)

    # -------------------------------------------------- checkpointing (faults)

    def _kv_prefix(self) -> str:
        return f"npm:{self.name}:"

    def checkpoint_slots(self, host: int) -> int:
        """Value slots ``host`` serializes into a checkpoint.

        Mirrors :meth:`_report_memory`'s canonical + remote-cache
        accounting; the checkpoint phase prices one ``local_ops`` event and
        ``KEY+value`` bytes per slot. For the key-value-store variant the
        canonical values live on the host's server shard.
        """
        store = self.stores[host]
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            canonical = self.kv_client.servers[host].count_prefix(self._kv_prefix())
        elif isinstance(store, GarHostStore):
            canonical = store.part.num_local
        else:
            canonical = len(store.owned)
        return canonical + store.remote_cache_size

    def export_compute_effects(self, host: int) -> tuple:
        """One host's compute-phase side effects, for the host-shard
        exchange (``repro.exec.pool``).

        Compute phases mutate exactly four things on the computing host:
        the pending reduction state, the request bitset, the duplicate
        request log, and the map's bound reduction operator. Everything
        else (stores, activity sets, updated flags) changes only during
        sync collectives, which every process replays identically. The
        state is *cumulative* since the last reduce-sync, so installing an
        export replaces the receiver's copy wholesale - re-installing a
        newer export of the same host stays correct (replacement, not
        accumulation). The operator ships by name: ``ReduceOp`` closes
        over lambdas, which do not cross process boundaries.
        """
        return (
            self._op.name if self._op is not None else None,
            self.reductions[host].export_state(),
            self.bitsets[host].export_state(),
            list(self._dup_requests[host]),
        )

    def install_compute_effects(
        self, host: int, effects: tuple, resolve_op: Callable[[str, str], ReduceOp]
    ) -> None:
        """Install another process's exported compute effects for ``host``.

        ``resolve_op(map_name, op_name)`` maps a shipped operator name back
        to a live ``ReduceOp`` (the pool builds the table from the named
        reducers plus the plan's kernels).
        """
        op_name, reduction_state, request_bits, dup_requests = effects
        if op_name is not None:
            if self._op is None:
                self._op = resolve_op(self.name, op_name)
            elif self._op.name != op_name:
                raise ValueError(
                    f"map {self.name!r} reduced with {op_name!r} on another "
                    f"process after {self._op.name!r} here; a map uses a "
                    "single reduction operator per loop"
                )
        self.reductions[host].install_state(reduction_state)
        self.bitsets[host].install_state(request_bits)
        self._dup_requests[host] = list(dup_requests)

    def export_epoch_state(self) -> dict:
        """All mutable state, in a picklable form, for the parallel pool's
        warm-run epoch protocol (``repro.exec.pool``).

        Between plan runs only the coordinator executes driver code
        (mirror pinning, value resets, reducer syncs), so a warm run
        starts by replacing the workers' replica wholesale. Unlike
        :meth:`checkpoint_state` this form crosses process boundaries:
        the reduction operator ships by name (``ReduceOp`` closes over
        lambdas), GAR stores export numeric value slabs when they can
        (zero-copy through the shared-memory arena), and the compute-phase
        effect state rides along explicitly (a restore clears it).
        """
        state = {
            "stores": [store.export_epoch() for store in self.stores],
            "any_updated": self._any_updated,
            "updated_masters": [set(s) for s in self._updated_masters],
            "active": [set(s) for s in self._active],
            "next_active": [set(s) for s in self._next_active],
            "op": self._op.name if self._op is not None else None,
            "pinned": self._pinned,
            "pin_invariant": self._pin_invariant,
            "fx": [
                self.export_compute_effects(host)
                for host in range(self.cluster.num_hosts)
            ],
        }
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            state["kv"] = [
                server.snapshot_prefix(self._kv_prefix())
                for server in self.kv_client.servers
            ]
        return state

    def install_epoch_state(
        self, state: dict, resolve_op: Callable[[str, str], ReduceOp]
    ) -> None:
        """Replace this replica's state with another process's export."""
        for store, store_state in zip(self.stores, state["stores"]):
            store.install_epoch(store_state)
        self._any_updated = state["any_updated"]
        self._updated_masters = [set(s) for s in state["updated_masters"]]
        self._active = [set(s) for s in state["active"]]
        self._next_active = [set(s) for s in state["next_active"]]
        self._invalidate_active_cache()
        op_name = state["op"]
        self._op = None if op_name is None else resolve_op(self.name, op_name)
        self._pinned = state["pinned"]
        self._pin_invariant = state["pin_invariant"]
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            for server, snapshot in zip(self.kv_client.servers, state["kv"]):
                server.restore_prefix(self._kv_prefix(), snapshot)
        for host, effects in enumerate(state["fx"]):
            self.install_compute_effects(host, effects, resolve_op)

    def checkpoint_state(self) -> dict:
        """Copy all mutable distributed state, for restore-and-replay.

        Checkpoints are taken at round boundaries, where reductions are
        drained (``pending_reductions() == 0``) and no phase is open, so
        store contents plus the round-vote/activity buffers are the whole
        state. Copying itself is not charged - the caller's checkpoint
        phase prices serialization through the cluster counters.
        """
        state = {
            "stores": [store.checkpoint() for store in self.stores],
            "any_updated": self._any_updated,
            "updated_masters": [set(s) for s in self._updated_masters],
            "active": [set(s) for s in self._active],
            "next_active": [set(s) for s in self._next_active],
            "op": self._op,
            "pinned": self._pinned,
            "pin_invariant": self._pin_invariant,
        }
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            state["kv"] = [
                server.snapshot_prefix(self._kv_prefix())
                for server in self.kv_client.servers
            ]
        return state

    def restore_state(self, state: dict) -> None:
        """Reinstate a checkpoint (restorable any number of times)."""
        for store, store_state in zip(self.stores, state["stores"]):
            store.restore(store_state)
        self._any_updated = state["any_updated"]
        self._updated_masters = [set(s) for s in state["updated_masters"]]
        self._active = [set(s) for s in state["active"]]
        self._next_active = [set(s) for s in state["next_active"]]
        self._invalidate_active_cache()
        self._op = state["op"]
        self._pinned = state["pinned"]
        self._pin_invariant = state["pin_invariant"]
        if self.variant.uses_kvstore:
            assert self.kv_client is not None
            for server, snapshot in zip(self.kv_client.servers, state["kv"]):
                server.restore_prefix(self._kv_prefix(), snapshot)
        # Mid-round request state does not survive a crash: replay rebuilds
        # the request sets from scratch.
        for bitset in self.bitsets:
            bitset.clear()
        for dups in self._dup_requests:
            dups.clear()
