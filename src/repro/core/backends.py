"""Per-host storage backends for the node-property map.

:class:`GarHostStore` is the paper's Figure 6: a dense vector for
locally-materialized properties (masters always; mirrors while pinned) plus
a sorted key/value array pair for requested remote properties, read by
binary search and dropped after every reduce-sync.

:class:`HashHostStore` is the non-partition-aware layout used by the MC,
SGR-only and SGR+CF variants: one hash map for owned keys (modulo-hashed
ownership) and one for the per-round remote cache. Every read is a hash
probe, and because ownership ignores the partition, even a host's own master
nodes usually live elsewhere and must be fetched each round.
"""

from __future__ import annotations

import copy
import math
from typing import Any, Iterable

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.metrics import Counters
from repro.core.reducers import ReduceOp
from repro.partition.base import PartitionedGraph


class GarHostStore:
    """Graph-partition-aware per-host store (masters dense, remotes sorted).

    ``remote_layout`` selects the requested-remote-cache representation:
    ``"sorted"`` is the paper's Figure 6 (sorted key/value arrays read by
    binary search); ``"hash"`` is the ablation alternative (a hash map,
    priced as hash probes).
    """

    def __init__(
        self,
        cluster: Cluster,
        pgraph: PartitionedGraph,
        host_id: int,
        remote_layout: str = "sorted",
    ) -> None:
        if remote_layout not in ("sorted", "hash"):
            raise ValueError(f"unknown remote layout {remote_layout!r}")
        self.cluster = cluster
        self.host_id = host_id
        self.part = pgraph.parts[host_id]
        self.owner = pgraph.owner
        self.remote_layout = remote_layout
        self.values: list[Any] = [None] * self.part.num_local
        masters = self.part.masters_global
        # Blocked policies give contiguous master id ranges, enabling O(1)
        # global -> local translation for masters (the heart of GAR).
        self._master_base = int(masters[0]) if masters.size else 0
        self._masters_contiguous = bool(
            masters.size == 0 or (masters[-1] - masters[0] + 1 == masters.size)
        )
        self.pinned = False
        self._remote_keys = np.empty(0, dtype=np.int64)
        self._remote_values: list[Any] = []
        self._remote_hash: dict[int, Any] = {}
        # Dense global->local translation (-1 where absent), built lazily
        # for the bulk paths; scalar reads keep the dict. Pure layout - no
        # charges attach to building or indexing it.
        self._g2l_arr: np.ndarray | None = None

    def _translate_arr(self) -> np.ndarray:
        if self._g2l_arr is None:
            arr = np.full(self.owner.size, -1, dtype=np.int64)
            arr[self.part.local_to_global] = np.arange(
                self.part.num_local, dtype=np.int64
            )
            arr.flags.writeable = False
            self._g2l_arr = arr
        return self._g2l_arr

    # -- local id translation ----------------------------------------------

    def master_local(self, key: int) -> int | None:
        if self.owner[key] != self.host_id:
            return None
        if self._masters_contiguous:
            return key - self._master_base
        self._check_counters().hash_probes += 1
        return self.part.global_to_local[key]

    def _mirror_local(self, key: int) -> int | None:
        local = self.part.global_to_local.get(key)
        if local is None or local < self.part.num_masters:
            return None
        return local

    def _master_locals(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`master_local` for keys this host must own.

        Charges the same per-key hash probe as the scalar translation when
        masters are not id-contiguous.
        """
        if keys.size and np.any(self.owner[keys] != self.host_id):
            bad = int(keys[self.owner[keys] != self.host_id][0])
            raise KeyError(f"node {bad} is not a master on host {self.host_id}")
        if self._masters_contiguous:
            return keys - self._master_base
        self._check_counters().hash_probes += int(keys.size)
        return self._translate_arr()[keys]

    # -- reads ----------------------------------------------------------------

    def _check_counters(self) -> Counters:
        """Counters for readability checks: compiler-inserted ``can_read``
        probes cost the same machine work as the read they guard, so they
        are metered identically - but checks issued outside a measured
        phase (test setup, verification) fall back to a detached scratch
        ``Counters`` and stay free."""
        if self.cluster.in_phase:
            return self.cluster.counters(self.host_id)
        return Counters()

    def can_read(self, key: int) -> bool:
        counters = self._check_counters()
        local = self.master_local(key)
        if local is not None:
            # Mirrors read()'s master path: checking the slot is a dense
            # vector load. An uninitialized master is NOT readable (read()
            # raises), so the value must be materialized too.
            counters.vector_reads += 1
            return self.values[local] is not None
        if self.pinned:
            mirror = self._mirror_local(key)
            if mirror is not None:
                counters.hash_probes += 1
                counters.vector_reads += 1
                # Pinned but not yet broadcast mirrors hold no value; read()
                # raises for them, so can_read must say False and fall
                # through to the requested-remote cache.
                if self.values[mirror] is not None:
                    return True
        if self.remote_layout == "hash":
            counters.hash_probes += 1
            return key in self._remote_hash
        size = self._remote_keys.size
        if not size:
            return False
        counters.binsearch_steps += int(math.log2(size)) + 1
        index = int(np.searchsorted(self._remote_keys, key))
        return bool(index < size and self._remote_keys[index] == key)

    def read(self, key: int) -> Any:
        counters = self.cluster.counters(self.host_id)
        local = self.master_local(key)
        if local is not None:
            counters.vector_reads += 1
            counters.reads_master += 1
            value = self.values[local]
            if value is None:
                raise KeyError(f"master {key} read before initialization")
            return value
        counters.reads_remote += 1
        if self.pinned:
            mirror = self._mirror_local(key)
            if mirror is not None:
                counters.hash_probes += 1
                counters.vector_reads += 1
                value = self.values[mirror]
                if value is not None:
                    return value
                # Pinned but not yet broadcast: the mirror slot is empty,
                # but the key may still have been requested and materialized
                # this round - fall through to the remote cache (matching
                # can_read's contract).
        if self.remote_layout == "hash":
            counters.hash_probes += 1
            if key in self._remote_hash:
                return self._remote_hash[key]
        else:
            size = self._remote_keys.size
            if size:
                counters.binsearch_steps += int(math.log2(size)) + 1
                index = int(np.searchsorted(self._remote_keys, key))
                if index < size and self._remote_keys[index] == key:
                    return self._remote_values[index]
        raise KeyError(
            f"node {key} not readable on host {self.host_id}: "
            "not a master, not a broadcast pinned mirror, and not requested "
            "this round"
        )

    def read_local(self, local_id: int) -> Any:
        """Fast path for reads addressed by local id (the common case in
        operators iterating local nodes and edges)."""
        counters = self.cluster.counters(self.host_id)
        counters.vector_reads += 1
        if local_id < self.part.num_masters:
            counters.reads_master += 1
        else:
            counters.reads_remote += 1
        value = self.values[local_id]
        if value is None:
            global_id = int(self.part.local_to_global[local_id])
            raise KeyError(f"local node {local_id} (global {global_id}) has no value")
        return value

    def read_local_bulk(self, local_ids: np.ndarray) -> np.ndarray:
        """Batched :meth:`read_local`: identical per-key accounting, values
        returned as one array (numeric when possible)."""
        count = int(local_ids.size)
        counters = self.cluster.counters(self.host_id)
        counters.vector_reads += count
        masters = int(np.count_nonzero(local_ids < self.part.num_masters))
        counters.reads_master += masters
        counters.reads_remote += count - masters
        store = self.values
        out = [store[i] for i in local_ids.tolist()]
        arr = np.asarray(out)
        if arr.dtype == object:
            for local_id, value in zip(local_ids.tolist(), out):
                if value is None:
                    global_id = int(self.part.local_to_global[local_id])
                    raise KeyError(
                        f"local node {local_id} (global {global_id}) has no value"
                    )
        return arr

    # -- writes (owner side) -------------------------------------------------

    def write_master(self, key: int, value: Any) -> None:
        local = self.master_local(key)
        if local is None:
            raise KeyError(f"node {key} is not a master on host {self.host_id}")
        self.cluster.counters(self.host_id).local_ops += 1
        self.values[local] = value

    def serve_master(self, key: int) -> Any:
        local = self.master_local(key)
        if local is None:
            raise KeyError(f"node {key} is not a master on host {self.host_id}")
        self.cluster.counters(self.host_id).vector_reads += 1
        return self.values[local]

    def apply_master(self, key: int, value: Any, op: ReduceOp) -> bool:
        """Reduce ``value`` onto the canonical master value; True if changed."""
        local = self.master_local(key)
        if local is None:
            raise KeyError(f"node {key} is not a master on host {self.host_id}")
        counters = self.cluster.counters(self.host_id)
        counters.vector_reads += 1
        counters.local_ops += 1
        old = self.values[local]
        new = value if old is None else op(old, value)
        if new != old:
            self.values[local] = new
            return True
        return False

    # -- bulk owner-side operations (vectorized execution path) ---------------

    def write_master_bulk(self, keys: np.ndarray, values: list[Any]) -> None:
        """Batched :meth:`write_master` with aggregate accounting."""
        locals_ = self._master_locals(keys)
        self.cluster.counters(self.host_id).local_ops += int(keys.size)
        store = self.values
        for local, value in zip(locals_.tolist(), values):
            store[local] = value

    def serve_master_bulk(self, keys: np.ndarray) -> list[Any]:
        """Batched :meth:`serve_master`: one dense gather, same charges."""
        if keys.size == 0:
            return []
        locals_ = self._master_locals(keys)
        self.cluster.counters(self.host_id).vector_reads += int(keys.size)
        store = self.values
        return [store[i] for i in locals_.tolist()]

    def apply_master_bulk(
        self, keys: np.ndarray, values: np.ndarray, op: ReduceOp
    ) -> np.ndarray:
        """Batched :meth:`apply_master`; returns the keys whose canonical
        value changed. Bit-identical results and accounting: numeric batches
        fold through the op's ufunc elementwise (each key appears once per
        batch), everything else falls back to the per-key scalar rule.
        """
        if keys.size == 0:
            return keys
        locals_ = self._master_locals(keys)
        count = int(keys.size)
        counters = self.cluster.counters(self.host_id)
        counters.vector_reads += count
        counters.local_ops += count
        store = self.values
        local_list = locals_.tolist()
        olds = [store[i] for i in local_list]
        values_arr = np.asarray(values)
        if values_arr.dtype != object and (
            op.ufunc is not None or op.name == "overwrite"
        ):
            old_arr = np.asarray(olds)
            if old_arr.dtype != object:
                if op.name == "overwrite":
                    new_arr = values_arr
                else:
                    new_arr = op.ufunc(old_arr, values_arr)
                changed = new_arr != old_arr
                if changed.any():
                    changed_idx = np.flatnonzero(changed)
                    for pos, value in zip(
                        changed_idx.tolist(), new_arr[changed_idx].tolist()
                    ):
                        store[local_list[pos]] = value
                return keys[changed]
        changed_keys: list[int] = []
        value_list = values_arr.tolist()
        for pos, (local, old) in enumerate(zip(local_list, olds)):
            value = value_list[pos]
            new = value if old is None else op(old, value)
            if new != old:
                store[local] = new
                changed_keys.append(int(keys[pos]))
        return np.asarray(changed_keys, dtype=np.int64)

    # -- uncharged replica installs (host-sharded sync collectives) ------------

    def _locals_uncharged(self, keys: np.ndarray) -> list[int]:
        """Global-to-local translation with no counter charges: the peer
        that produced a sharded-sync delta already paid the modeled cost
        of the work; installing the delta on a replica is free."""
        if self._masters_contiguous:
            return (keys - self._master_base).tolist()
        return self._translate_arr()[keys].tolist()

    def peek_masters(self, keys: np.ndarray) -> list[Any]:
        """Uncharged :meth:`serve_master_bulk`, for exporting the values a
        sharded reduce-sync changed (the applies were already charged)."""
        store = self.values
        return [store[i] for i in self._locals_uncharged(keys)]

    def poke_masters(self, keys: np.ndarray, values: list[Any]) -> None:
        """Uncharged :meth:`write_master_bulk`: install a peer's owner-side
        apply results into this replica."""
        store = self.values
        for local, value in zip(self._locals_uncharged(keys), values):
            store[local] = value

    def poke_mirrors(self, keys: np.ndarray, values: list[Any]) -> None:
        """Uncharged :meth:`write_mirror_bulk`: install a peer's broadcast
        fan-out writes into this replica."""
        store = self.values
        for local, value in zip(self._translate_arr()[keys].tolist(), values):
            store[local] = value

    def write_mirror_bulk(self, keys: np.ndarray, values: list[Any]) -> None:
        """Batched :meth:`write_mirror` with aggregate accounting."""
        count = int(keys.size)
        counters = self.cluster.counters(self.host_id)
        counters.hash_probes += count
        counters.local_ops += count
        locals_ = self._translate_arr()[keys]
        bad = locals_ < self.part.num_masters
        if bad.any():
            key = int(keys[bad][0])
            raise KeyError(f"node {key} is not a mirror on host {self.host_id}")
        store = self.values
        for local, value in zip(locals_.tolist(), values):
            store[local] = value

    # -- remote cache ----------------------------------------------------------

    def materialize_remote(self, keys: np.ndarray, values: list[Any]) -> None:
        """Install requested remote properties into the sorted arrays.

        Merges with already-materialized entries: a round may have several
        request phases (chained dynamic reads), and each stays readable
        until the next reduce-sync drops the cache. New values win - they
        are fresher reads of the same canonical masters.
        """
        installed = len(values)
        if self.remote_layout == "hash":
            self._remote_hash.update(zip(keys.tolist(), values))
            self.cluster.counters(self.host_id).materialize_ops += installed
            return
        # Deduplicate last-wins *before* sorting: a batch may repeat a key
        # (e.g. with request dedup disabled), and np.argsort's default
        # quicksort is not stable, so without this the surviving value of a
        # same-key tie would be backend-internal instead of the newest one.
        merged = {
            int(k): v for k, v in zip(self._remote_keys.tolist(), self._remote_values)
        }
        merged.update(zip((int(k) for k in keys.tolist()), values))
        keys = np.fromiter(merged.keys(), dtype=np.int64, count=len(merged))
        values = list(merged.values())
        order = np.argsort(keys, kind="stable")
        self._remote_keys = keys[order]
        self._remote_values = [values[i] for i in order]
        self.cluster.counters(self.host_id).materialize_ops += installed

    def drop_remote(self) -> None:
        self._remote_keys = np.empty(0, dtype=np.int64)
        self._remote_values = []
        self._remote_hash.clear()

    @property
    def remote_cache_size(self) -> int:
        if self.remote_layout == "hash":
            return len(self._remote_hash)
        return self._remote_keys.size

    # -- checkpointing (repro.faults) ----------------------------------------

    def checkpoint(self) -> dict:
        """Copy the full mutable state; not charged (the checkpoint phase
        prices serialization through the cluster counters)."""
        return {
            "values": copy.deepcopy(self.values),
            "remote_keys": self._remote_keys.copy(),
            "remote_values": copy.deepcopy(self._remote_values),
            "remote_hash": copy.deepcopy(self._remote_hash),
            "pinned": self.pinned,
        }

    def restore(self, state: dict) -> None:
        """Reinstate a checkpoint; copies again so it can be restored twice."""
        self.values = copy.deepcopy(state["values"])
        self._remote_keys = state["remote_keys"].copy()
        self._remote_values = copy.deepcopy(state["remote_values"])
        self._remote_hash = copy.deepcopy(state["remote_hash"])
        self.pinned = state["pinned"]

    # -- shared-slab export (repro.exec.pool epoch protocol) -----------------

    def export_values_slab(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The dense value vector as ``(values, valid)`` numpy arrays, or
        None when it cannot round-trip exactly.

        The slab is the zero-copy transport of the parallel backend's
        epoch blobs: protocol-5 pickling ships both arrays as raw buffers
        straight into a shared-memory arena. Only exact native ``int`` /
        ``float`` homogeneous vectors qualify (``bool`` stays out - it is
        an ``int`` subclass but must not come back as one; huge ints
        overflow ``int64``); anything else falls back to the generic
        checkpoint encoding.
        """
        values = self.values
        mask = np.fromiter(
            (v is not None for v in values), dtype=bool, count=len(values)
        )
        present = [v for v in values if v is not None]
        if all(type(v) is int for v in present):
            dtype: Any = np.int64
        elif all(type(v) is float for v in present):
            dtype = np.float64
        else:
            return None
        slab = np.zeros(len(values), dtype=dtype)
        try:
            slab[mask] = present
        except (OverflowError, ValueError):
            return None
        return slab, mask

    def attach_values_slab(self, slab: np.ndarray, mask: np.ndarray) -> None:
        """Replace the value vector from an exported slab, restoring the
        exact native scalar types (``.tolist()`` yields ``int``/``float``)."""
        values: list[Any] = [None] * len(mask)
        unpacked = slab.tolist()
        for local, ok in enumerate(mask.tolist()):
            if ok:
                values[local] = unpacked[local]
        self.values = values

    def export_epoch(self) -> tuple:
        slab = self.export_values_slab()
        if slab is None:
            return ("raw", self.checkpoint())
        values, mask = slab
        return (
            "slab",
            values,
            mask,
            self._remote_keys.copy(),
            list(self._remote_values),
            dict(self._remote_hash),
            self.pinned,
        )

    def install_epoch(self, state: tuple) -> None:
        if state[0] == "raw":
            self.restore(state[1])
            return
        _, values, mask, remote_keys, remote_values, remote_hash, pinned = state
        self.attach_values_slab(values, mask)
        self._remote_keys = np.asarray(remote_keys, dtype=np.int64)
        self._remote_values = list(remote_values)
        self._remote_hash = dict(remote_hash)
        self.pinned = bool(pinned)

    # -- pinned mirrors ----------------------------------------------------------

    def pin(self) -> None:
        self.pinned = True

    def unpin(self) -> None:
        self.pinned = False
        for local in range(self.part.num_masters, self.part.num_local):
            self.values[local] = None

    def write_mirror(self, key: int, value: Any) -> None:
        mirror = self._mirror_local(key)
        if mirror is None:
            raise KeyError(f"node {key} is not a mirror on host {self.host_id}")
        counters = self.cluster.counters(self.host_id)
        counters.hash_probes += 1
        counters.local_ops += 1
        self.values[mirror] = value


class HashHostStore:
    """Modulo-hashed per-host store (the MC / SGR-only / SGR+CF layout)."""

    def __init__(
        self,
        cluster: Cluster,
        pgraph: PartitionedGraph,
        host_id: int,
        num_hosts: int,
    ) -> None:
        self.cluster = cluster
        self.host_id = host_id
        self.part = pgraph.parts[host_id]
        self.num_hosts = num_hosts
        self.owned: dict[int, Any] = {}
        self.cache: dict[int, Any] = {}
        self.pinned = False

    def hash_owner(self, key: int) -> int:
        return key % self.num_hosts

    def always_fetch_keys(self) -> Iterable[int]:
        """Keys this host reads every round regardless of explicit requests:
        its masters, plus its mirrors while "pinned" (no broadcast exists
        without partition awareness, so pinning degrades to refetching)."""
        yield from (int(g) for g in self.part.masters_global)
        if self.pinned:
            yield from (int(g) for g in self.part.mirrors_global)

    def can_read(self, key: int) -> bool:
        # Priced like read(): one hash probe per readability check (checks
        # outside a measured phase are free, as in GarHostStore).
        if self.cluster.in_phase:
            self.cluster.counters(self.host_id).hash_probes += 1
        return key in self.cache or (
            self.hash_owner(key) == self.host_id and key in self.owned
        )

    def read(self, key: int) -> Any:
        counters = self.cluster.counters(self.host_id)
        counters.hash_probes += 1
        local = self.part.global_to_local.get(key)
        if local is not None and local < self.part.num_masters:
            counters.reads_master += 1
        else:
            counters.reads_remote += 1
        if key in self.cache:
            return self.cache[key]
        if self.hash_owner(key) == self.host_id and key in self.owned:
            return self.owned[key]
        raise KeyError(
            f"node {key} not in host {self.host_id}'s cache; was it requested?"
        )

    def read_local(self, local_id: int) -> Any:
        return self.read(int(self.part.local_to_global[local_id]))

    def read_local_bulk(self, local_ids: np.ndarray) -> np.ndarray:
        """Batched :meth:`read_local`: aggregate charges, same probe counts."""
        count = int(local_ids.size)
        counters = self.cluster.counters(self.host_id)
        counters.hash_probes += count
        masters = int(np.count_nonzero(local_ids < self.part.num_masters))
        counters.reads_master += masters
        counters.reads_remote += count - masters
        cache = self.cache
        owned = self.owned
        out = []
        for key in self.part.local_to_global[local_ids].tolist():
            if key in cache:
                out.append(cache[key])
            elif key % self.num_hosts == self.host_id and key in owned:
                out.append(owned[key])
            else:
                raise KeyError(
                    f"node {key} not in host {self.host_id}'s cache; "
                    "was it requested?"
                )
        return np.asarray(out)

    def write_master(self, key: int, value: Any) -> None:
        self.cluster.counters(self.host_id).hash_probes += 1
        self.owned[key] = value

    def write_master_bulk(self, keys: np.ndarray, values: list[Any]) -> None:
        self.cluster.counters(self.host_id).hash_probes += int(keys.size)
        self.owned.update(zip(keys.tolist(), values))

    def serve_master(self, key: int) -> Any:
        self.cluster.counters(self.host_id).hash_probes += 1
        return self.owned[key]

    def serve_master_bulk(self, keys: np.ndarray) -> list[Any]:
        self.cluster.counters(self.host_id).hash_probes += int(keys.size)
        owned = self.owned
        return [owned[key] for key in keys.tolist()]

    def apply_master(self, key: int, value: Any, op: ReduceOp) -> bool:
        counters = self.cluster.counters(self.host_id)
        counters.hash_probes += 1
        counters.local_ops += 1
        old = self.owned.get(key)
        new = value if old is None else op(old, value)
        if new != old:
            self.owned[key] = new
            return True
        return False

    def apply_master_bulk(
        self, keys: np.ndarray, values: np.ndarray, op: ReduceOp
    ) -> np.ndarray:
        """Batched :meth:`apply_master` (hash layout keeps the per-key rule;
        only the counter updates aggregate). Returns the changed keys."""
        count = int(keys.size)
        counters = self.cluster.counters(self.host_id)
        counters.hash_probes += count
        counters.local_ops += count
        owned = self.owned
        changed_keys: list[int] = []
        for key, value in zip(keys.tolist(), np.asarray(values).tolist()):
            old = owned.get(key)
            new = value if old is None else op(old, value)
            if new != old:
                owned[key] = new
                changed_keys.append(key)
        return np.asarray(changed_keys, dtype=np.int64)

    def materialize_remote(self, keys: np.ndarray, values: list[Any]) -> None:
        for key, value in zip(keys.tolist(), values):
            self.cache[key] = value
        self.cluster.counters(self.host_id).materialize_ops += len(values)

    def drop_remote(self) -> None:
        self.cache.clear()

    @property
    def remote_cache_size(self) -> int:
        return len(self.cache)

    # -- checkpointing (repro.faults) ----------------------------------------

    def checkpoint(self) -> dict:
        return {
            "owned": copy.deepcopy(self.owned),
            "cache": copy.deepcopy(self.cache),
            "pinned": self.pinned,
        }

    def restore(self, state: dict) -> None:
        self.owned = copy.deepcopy(state["owned"])
        self.cache = copy.deepcopy(state["cache"])
        self.pinned = state["pinned"]

    def export_epoch(self) -> tuple:
        # Hash layouts have no dense slab; the generic checkpoint encoding
        # is the honest transport (these variants are the slow baselines).
        return ("raw", self.checkpoint())

    def install_epoch(self, state: tuple) -> None:
        self.restore(state[1])

    def pin(self) -> None:
        self.pinned = True

    def unpin(self) -> None:
        self.pinned = False


def make_store(
    variant_uses_gar: bool,
    cluster: Cluster,
    pgraph: PartitionedGraph,
    host_id: int,
    remote_layout: str = "sorted",
) -> GarHostStore | HashHostStore:
    if variant_uses_gar:
        return GarHostStore(cluster, pgraph, host_id, remote_layout=remote_layout)
    return HashHostStore(cluster, pgraph, host_id, pgraph.num_hosts)
